//! The localized clustering-error metric Δ(S, S′) (paper Section 4.1,
//! "Quantifying Node-Merging Approximation Error", and Section 4.2 for
//! value-compression steps).
//!
//! Δ measures the sum of squared estimation-error increases over a set of
//! *atomic queries* `u[p]/c`, where `p` ranges over the atomic value
//! predicates of the affected value summaries (prefix ranges at histogram
//! boundaries / retained PST substrings / indexed terms) and `c` over the
//! children of the affected nodes. With the Path–Value Independence
//! estimate `e_S(u, p, c) = σ_p(u) · count(u, c)`, the double sum
//! factorizes into value *atomic moments* times structural edge-count
//! moments:
//!
//! ```text
//! Σ_p Σ_c (σ_p(u)·cᵤ(c) − σ_p(w)·c_w(c))²
//!   = (Σ_p σ_p(u)²)(Σ_c cᵤ²) − 2(Σ_p σ_p(u)σ_p(w))(Σ_c cᵤc_w)
//!     + (Σ_p σ_p(w)²)(Σ_c c_w²)
//! ```
//!
//! **Deviation from the paper** (documented in `DESIGN.md`): the paper's
//! `c ∈ Cu ∪ Cv` makes Δ vanish for childless value leaves (`year`,
//! `title`, …), so we extend every node's target set with a virtual
//! *self* child of count 1 — value-distribution divergence is then always
//! measured, and the metric is unchanged for the purely structural parts.

use crate::build::{
    structure_value_merge, structure_value_merge_groups, value_compression,
    value_compression_groups, BuildConfig, GroupSet,
};
use crate::merge::merge_struct_bytes_saved;
use crate::synopsis::{Synopsis, SynopsisNode, SynopsisNodeId};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use xcluster_summaries::{AtomicMoments, ValueSummary};
use xcluster_xml::{NodeId, Symbol, Value, ValueType, XmlTree};

/// A scored candidate `merge(S, u, v)` operation.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeCandidate {
    /// First node to merge.
    pub u: SynopsisNodeId,
    /// Second node to merge.
    pub v: SynopsisNodeId,
    /// Δ(S, S′) — the increase in clustering error.
    pub delta: f64,
    /// Structural bytes the merge frees (`|S|_str − |S′|_str`).
    pub bytes_saved: usize,
    /// Node versions at evaluation time, for lazy-heap invalidation.
    pub versions: (u32, u32),
}

impl MergeCandidate {
    /// Marginal loss: error increase per structural byte saved (the
    /// paper's ranking criterion, line 5 of Figure 5).
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// A scored candidate value-compression step on one node's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressCandidate {
    /// The node whose summary the step compresses.
    pub node: SynopsisNodeId,
    /// Δ(S, S′) for the step.
    pub delta: f64,
    /// Summary bytes freed.
    pub bytes_saved: usize,
    /// Node version at evaluation time.
    pub version: u32,
}

impl CompressCandidate {
    /// Marginal loss: error increase per byte saved (Figure 5, line 15).
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// Evaluates Δ and the space savings of `merge(S, u, v)` without
/// mutating the synopsis.
pub fn evaluate_merge(s: &Synopsis, u: SynopsisNodeId, v: SynopsisNodeId) -> MergeCandidate {
    evaluate_merge_with(s, u, v, true)
}

/// [`evaluate_merge`] with the value moments optionally replaced by the
/// trivial predicate set — the cheap lower-effort score `build_pool`
/// seeds value-bearing candidates with (no summary fusion).
pub fn evaluate_merge_with(
    s: &Synopsis,
    u: SynopsisNodeId,
    v: SynopsisNodeId,
    use_values: bool,
) -> MergeCandidate {
    let nu = s.node(u);
    let nv = s.node(v);
    debug_assert!(nu.alive && nv.alive && nu.label == nv.label && nu.vtype == nv.vtype);
    let cu = nu.count;
    let cv = nv.count;
    let cw = cu + cv;

    // Edge-count tuples over the union of (remapped) child targets, plus
    // the virtual self child. `u`/`v` as targets collapse into `w`.
    const SELF_KEY: usize = usize::MAX - 1;
    const MERGED_KEY: usize = usize::MAX;
    let mut targets: BTreeMap<usize, (f64, f64)> = BTreeMap::new();
    targets.insert(SELF_KEY, (1.0, 1.0));
    for &(t, c) in &nu.children {
        let k = if t == u || t == v { MERGED_KEY } else { t };
        targets.entry(k).or_insert((0.0, 0.0)).0 += c;
    }
    for &(t, c) in &nv.children {
        let k = if t == u || t == v { MERGED_KEY } else { t };
        targets.entry(k).or_insert((0.0, 0.0)).1 += c;
    }
    let (mut u_uu, mut u_uw, mut u_ww) = (0.0, 0.0, 0.0);
    let (mut v_vv, mut v_vw, mut v_ww) = (0.0, 0.0, 0.0);
    for (&k, &(ecu, ecv)) in &targets {
        let ecw = if k == SELF_KEY {
            1.0
        } else {
            (cu * ecu + cv * ecv) / cw
        };
        u_uu += ecu * ecu;
        u_uw += ecu * ecw;
        u_ww += ecw * ecw;
        v_vv += ecv * ecv;
        v_vw += ecv * ecw;
        v_ww += ecw * ecw;
    }

    // Value moments against the fused summary.
    let (m_u, m_v) = if use_values {
        let fused = fuse_options(&nu.vsumm, &nv.vsumm);
        (
            pair_moments(&nu.vsumm, &fused),
            pair_moments(&nv.vsumm, &fused),
        )
    } else {
        (AtomicMoments::TRIVIAL, AtomicMoments::TRIVIAL)
    };

    let delta_u = cu * (m_u.sum_aa * u_uu - 2.0 * m_u.sum_ab * u_uw + m_u.sum_bb * u_ww);
    let delta_v = cv * (m_v.sum_aa * v_vv - 2.0 * m_v.sum_ab * v_vw + m_v.sum_bb * v_ww);
    MergeCandidate {
        u,
        v,
        delta: (delta_u + delta_v).max(0.0),
        bytes_saved: merge_struct_bytes_saved(s, u, v),
        versions: (nu.version, nv.version),
    }
}

/// Fuses two optional summaries the way [`crate::merge::apply_merge`]
/// will.
fn fuse_options(a: &Option<ValueSummary>, b: &Option<ValueSummary>) -> Option<ValueSummary> {
    match (a, b) {
        (Some(x), Some(y)) => {
            let mut fused = x.fuse(y);
            if fused.size_bytes() > crate::merge::FUSED_SUMMARY_CAP {
                fused.compress_to_bytes(crate::merge::FUSED_SUMMARY_CAP);
            }
            Some(fused)
        }
        (Some(x), None) => Some(x.clone()),
        (None, Some(y)) => Some(y.clone()),
        (None, None) => None,
    }
}

/// Atomic moments of a node's summary against the (fused) replacement;
/// nodes without summaries contribute only the trivial predicate.
fn pair_moments(own: &Option<ValueSummary>, fused: &Option<ValueSummary>) -> AtomicMoments {
    match (own, fused) {
        (Some(a), Some(w)) => a.atomic_moments(w),
        _ => AtomicMoments::TRIVIAL,
    }
}

/// Evaluates the best single value-compression step on `node`'s summary
/// (paper Section 4.2: only the first Δ summand applies, with `w = u` —
/// the structure is unchanged, so the edge-count moment is a common
/// factor `Σ_c count(u, c)²`).
pub fn evaluate_compression(s: &Synopsis, node: SynopsisNodeId) -> Option<CompressCandidate> {
    let n = s.node(node);
    let step = n.vsumm.as_ref()?.peek_compression()?;
    Some(CompressCandidate {
        node,
        delta: n.count * step.sq_error * edge_sq_moment(s, node),
        bytes_saved: step.bytes_saved,
        version: n.version,
    })
}

/// `Σ_c count(u, c)²` over `u`'s children plus the virtual self child.
pub fn edge_sq_moment(s: &Synopsis, node: SynopsisNodeId) -> f64 {
    1.0 + s
        .node(node)
        .children
        .iter()
        .map(|&(_, c)| c * c)
        .sum::<f64>()
}

/// A chunked value-compression candidate: the candidate carries the
/// already-compressed summary, ready to swap in when selected.
///
/// The paper applies `b = 1` micro-steps; our footprint granularity
/// (9-byte PST nodes) makes that quadratic on megabyte-sized reference
/// summaries, so the build algorithm compresses in *chunks* of
/// `max(min_chunk, size/4)` bytes per heap selection. The ranking
/// criterion (accumulated Δ per byte saved) is unchanged; see `DESIGN.md`.
#[derive(Debug, Clone)]
pub struct ChunkCandidate {
    /// The node whose summary this chunk compresses.
    pub node: SynopsisNodeId,
    /// Accumulated Δ of the chunk.
    pub delta: f64,
    /// Bytes the chunk frees.
    pub bytes_saved: usize,
    /// Node version at evaluation time.
    pub version: u32,
    /// The summary after applying the chunk.
    pub compressed: ValueSummary,
}

impl ChunkCandidate {
    /// Marginal loss of the whole chunk.
    pub fn marginal_loss(&self) -> f64 {
        self.delta / self.bytes_saved.max(1) as f64
    }
}

/// Evaluates a compression chunk of roughly `max(min_chunk, size/8)`
/// bytes on `node`'s summary. Returns `None` if the summary is absent or
/// already minimal.
pub fn evaluate_compression_chunk(
    s: &Synopsis,
    node: SynopsisNodeId,
    min_chunk: usize,
) -> Option<ChunkCandidate> {
    let n = s.node(node);
    let summary = n.vsumm.as_ref()?;
    let start_bytes = summary.size_bytes();
    let target = start_bytes.saturating_sub((start_bytes / 4).max(min_chunk));
    let mut compressed = summary.clone();
    let sq_error = compressed.compress_to_bytes(target);
    let bytes_saved = start_bytes - compressed.size_bytes();
    if bytes_saved == 0 {
        return None;
    }
    Some(ChunkCandidate {
        node,
        delta: n.count * sq_error * edge_sq_moment(s, node),
        bytes_saved,
        version: n.version,
        compressed,
    })
}

// ---------------------------------------------------------------------
// Incremental maintenance: document deltas (DESIGN.md §13).
//
// A `DocDelta` describes subtree insertions and deletions against one
// base document. `apply_to_tree` replays it on the document (producing
// the mutated tree plus an id remap), `apply_delta` replays it on the
// synopsis: cluster counts, edge pair-totals, and value summaries are
// updated locally via a deterministic descent mapping, the touched
// `(label, type)` groups are marked dirty, and the merge/compression
// heaps re-run only over the dirtied regions when a byte budget is
// exceeded (full-pass fallback).
// ---------------------------------------------------------------------

/// Registry handles for incremental-maintenance instrumentation.
mod dstats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, Counter};

    pub static APPLIED: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("delta.applied"));
    pub static INSERTED: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("delta.inserted_elements"));
    pub static DELETED: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("delta.deleted_elements"));
    pub static REMERGES: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("delta.remerges"));
    pub static RECOMPRESSIONS: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("delta.recompressions"));
}

/// One subtree mutation against a base document.
#[derive(Debug, Clone)]
pub enum DeltaOp {
    /// Splice `fragment` (its whole tree, rooted at `fragment.root()`) in
    /// as a new last child of `parent`. The fragment carries its own
    /// interners; labels and terms are re-interned on application.
    Insert {
        /// Base-document element the fragment is attached under.
        parent: NodeId,
        /// The subtree to insert.
        fragment: XmlTree,
    },
    /// Remove the subtree rooted at `root` (which must not be the
    /// document root, and delete roots must not nest).
    Delete {
        /// Base-document root of the removed subtree.
        root: NodeId,
    },
}

/// An ordered batch of subtree mutations against one base document.
#[derive(Debug, Clone, Default)]
pub struct DocDelta {
    /// The mutations, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl DocDelta {
    /// Wraps a list of operations.
    pub fn new(ops: Vec<DeltaOp>) -> Self {
        DocDelta { ops }
    }

    /// Whether the delta contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Total elements inserted by the delta's fragments.
    pub fn inserted_elements(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Insert { fragment, .. } => fragment.len(),
                DeltaOp::Delete { .. } => 0,
            })
            .sum()
    }
}

/// The result of replaying a [`DocDelta`] on its base document.
#[derive(Debug)]
pub struct TreePatch {
    /// The mutated document (fresh arena, interners symbol-aligned with
    /// the base for all surviving labels/terms).
    pub tree: XmlTree,
    /// For each `Insert` op (in op order), the id of the inserted
    /// fragment root in [`TreePatch::tree`].
    pub inserted_roots: Vec<NodeId>,
    /// Base node id → id in [`TreePatch::tree`]; `None` for deleted nodes.
    pub remap: Vec<Option<NodeId>>,
}

/// Panics on malformed deltas: out-of-range ids, deletion of the document
/// root, nested or duplicate delete roots, or an insert parent inside a
/// deleted subtree. Generators uphold these invariants by construction.
fn validate_delta(base: &XmlTree, delta: &DocDelta) {
    let mut roots: HashSet<u32> = HashSet::new();
    for op in &delta.ops {
        if let DeltaOp::Delete { root } = op {
            assert!(root.index() < base.len(), "delete root out of range");
            assert!(*root != base.root(), "cannot delete the document root");
            assert!(roots.insert(root.0), "duplicate delete root {root:?}");
        }
    }
    for op in &delta.ops {
        match op {
            DeltaOp::Delete { root } => {
                let mut cur = *root;
                while let Some(p) = base.parent(cur) {
                    assert!(
                        !roots.contains(&p.0),
                        "nested delete roots: {root:?} inside {p:?}"
                    );
                    cur = p;
                }
            }
            DeltaOp::Insert { parent, .. } => {
                assert!(parent.index() < base.len(), "insert parent out of range");
                let mut cur = *parent;
                loop {
                    assert!(
                        !roots.contains(&cur.0),
                        "insert parent {parent:?} lies in a deleted subtree"
                    );
                    match base.parent(cur) {
                        Some(p) => cur = p,
                        None => break,
                    }
                }
            }
        }
    }
}

/// Preorder over a fragment: its root, then its descendants.
fn fragment_preorder(frag: &XmlTree) -> impl Iterator<Item = NodeId> + '_ {
    std::iter::once(frag.root()).chain(frag.descendants(frag.root()))
}

/// Replays `delta` on `base`, producing the mutated document.
///
/// The new tree re-interns the base dictionaries in order (so surviving
/// symbols are unchanged) and then interns every fragment's labels and
/// terms in global op order — the exact order [`apply_delta`] interns
/// them into the synopsis, keeping document and synopsis symbol-aligned.
pub fn apply_to_tree(base: &XmlTree, delta: &DocDelta) -> TreePatch {
    validate_delta(base, delta);
    let mut deleted = vec![false; base.len()];
    let mut inserts_at: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, op) in delta.ops.iter().enumerate() {
        match op {
            DeltaOp::Delete { root } => deleted[root.index()] = true,
            DeltaOp::Insert { parent, .. } => inserts_at.entry(parent.0).or_default().push(i),
        }
    }
    let mut t = XmlTree::new(base.label_str(base.root()));
    for (_, l) in base.labels().iter() {
        t.intern_label(l);
    }
    for (_, w) in base.terms().iter() {
        t.intern_term(w);
    }
    for op in &delta.ops {
        if let DeltaOp::Insert { fragment, .. } = op {
            for n in fragment_preorder(fragment) {
                t.intern_label(fragment.label_str(n));
                if let Value::Text(tv) = fragment.value(n) {
                    for &term in tv.terms() {
                        t.intern_term(fragment.term_str(term));
                    }
                }
            }
        }
    }
    t.set_value(t.root(), base.value(base.root()).clone());
    let mut remap: Vec<Option<NodeId>> = vec![None; base.len()];
    remap[base.root().index()] = Some(t.root());
    let mut inserted: Vec<Option<NodeId>> = vec![None; delta.ops.len()];
    copy_level(
        &mut t,
        base,
        base.root(),
        NodeId(0),
        &deleted,
        &inserts_at,
        &delta.ops,
        &mut remap,
        &mut inserted,
    );
    TreePatch {
        tree: t,
        inserted_roots: inserted.into_iter().flatten().collect(),
        remap,
    }
}

/// Copies the surviving base children of `bnode` under `tnode`, then
/// appends the fragments inserted at `bnode` (op order).
#[allow(clippy::too_many_arguments)]
fn copy_level(
    t: &mut XmlTree,
    base: &XmlTree,
    bnode: NodeId,
    tnode: NodeId,
    deleted: &[bool],
    inserts_at: &BTreeMap<u32, Vec<usize>>,
    ops: &[DeltaOp],
    remap: &mut [Option<NodeId>],
    inserted: &mut [Option<NodeId>],
) {
    for c in base.children(bnode) {
        if deleted[c.index()] {
            continue;
        }
        let id = t.add_child_sym(tnode, base.label(c));
        t.set_value(id, base.value(c).clone());
        remap[c.index()] = Some(id);
        copy_level(t, base, c, id, deleted, inserts_at, ops, remap, inserted);
    }
    if let Some(idxs) = inserts_at.get(&bnode.0) {
        for &i in idxs {
            let DeltaOp::Insert { fragment, .. } = &ops[i] else {
                unreachable!("inserts_at only indexes Insert ops")
            };
            inserted[i] = Some(copy_fragment(t, fragment, fragment.root(), tnode));
        }
    }
}

fn copy_fragment(t: &mut XmlTree, frag: &XmlTree, fnode: NodeId, tparent: NodeId) -> NodeId {
    let sym = t.intern_label(frag.label_str(fnode));
    let id = t.add_child_sym(tparent, sym);
    let v = match frag.value(fnode) {
        Value::Text(tv) => Value::Text(
            tv.terms()
                .iter()
                .map(|&term| t.intern_term(frag.term_str(term)))
                .collect(),
        ),
        other => other.clone(),
    };
    t.set_value(id, v);
    for c in frag.children(fnode).collect::<Vec<_>>() {
        copy_fragment(t, frag, c, id);
    }
    id
}

/// Extracts the subtree rooted at `root` as a standalone fragment tree
/// (fresh interners). Used to build insertion fragments and to invert
/// deletions.
pub fn extract_subtree(base: &XmlTree, root: NodeId) -> XmlTree {
    let mut t = XmlTree::new(base.label_str(root));
    let rv = rebase_value(&mut t, base, root);
    t.set_value(t.root(), rv);
    extract_children(&mut t, base, root, NodeId(0));
    t
}

fn extract_children(t: &mut XmlTree, base: &XmlTree, bnode: NodeId, tnode: NodeId) {
    for c in base.children(bnode) {
        let id = t.add_child(tnode, base.label_str(c));
        let v = rebase_value(t, base, c);
        t.set_value(id, v);
        extract_children(t, base, c, id);
    }
}

fn rebase_value(t: &mut XmlTree, base: &XmlTree, node: NodeId) -> Value {
    match base.value(node) {
        Value::Text(tv) => Value::Text(
            tv.terms()
                .iter()
                .map(|&term| t.intern_term(base.term_str(term)))
                .collect(),
        ),
        other => other.clone(),
    }
}

/// Builds the delta that undoes `delta`: deletions of the inserted
/// fragment roots and re-insertions of the deleted subtrees, in reverse
/// op order. The inverse applies against [`TreePatch::tree`] (its ids
/// come from `patch`).
pub fn inverse_delta(base: &XmlTree, delta: &DocDelta, patch: &TreePatch) -> DocDelta {
    let mut insert_idx = 0usize;
    let mut ops: Vec<DeltaOp> = Vec::with_capacity(delta.ops.len());
    for op in &delta.ops {
        ops.push(match op {
            DeltaOp::Insert { .. } => {
                let root = patch.inserted_roots[insert_idx];
                insert_idx += 1;
                DeltaOp::Delete { root }
            }
            DeltaOp::Delete { root } => {
                let p = base
                    .parent(*root)
                    .expect("validated: not the document root");
                let parent = patch.remap[p.index()].expect("delete parent survives the patch");
                DeltaOp::Insert {
                    parent,
                    fragment: extract_subtree(base, *root),
                }
            }
        });
    }
    ops.reverse();
    DocDelta { ops }
}

/// Outcome of one [`apply_delta`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Elements added to cluster extents.
    pub inserted_elements: usize,
    /// Elements removed from cluster extents.
    pub deleted_elements: usize,
    /// Clusters created for fragment elements with no matching child.
    pub new_clusters: usize,
    /// Clusters tombstoned after their extent emptied.
    pub removed_clusters: usize,
    /// Dirtied `(label, type)` groups.
    pub dirty_groups: usize,
    /// Subtrees/extents skipped or clamped because the descent mapping
    /// had no matching cluster (mapping drift on merged synopses).
    pub clamped: usize,
    /// Whether the structural budget forced a dirty-region merge pass.
    pub remerged: bool,
    /// Whether the value budget forced a dirty-region compression pass.
    pub recompressed: bool,
}

/// Per-cluster summary cap for clusters created by a delta, mirroring
/// `ReferenceConfig::default().max_summary_bytes` (strings/text get 4×,
/// as in reference construction).
const NEW_SUMMARY_CAP: usize = 1024;

#[derive(Default)]
struct DeltaAccum {
    /// Net extent-count change per cluster.
    dcount: BTreeMap<SynopsisNodeId, f64>,
    /// Net parent→child *pair total* change per edge (integer-valued).
    dedge: BTreeMap<(SynopsisNodeId, SynopsisNodeId), f64>,
    /// Dirtied `(label, type)` groups.
    dirty: GroupSet,
    /// Values routed into clusters created by this delta.
    new_values: BTreeMap<SynopsisNodeId, Vec<Value>>,
    created: Vec<SynopsisNodeId>,
    clamped: usize,
    inserted: usize,
    deleted: usize,
}

/// Effective extent of `id` mid-delta: the stored count plus the net
/// change accumulated by earlier ops of the same delta (counts are only
/// written back once, after mapping). Descent must compare effective
/// counts so that op *k* maps against the state ops 1..k-1 produced —
/// an inverse delta (ops reversed) then walks the same state sequence
/// backwards and retraces every choice exactly.
fn eff(s: &Synopsis, dcount: &BTreeMap<SynopsisNodeId, f64>, id: SynopsisNodeId) -> f64 {
    s.node(id).count + dcount.get(&id).copied().unwrap_or(0.0)
}

/// The deterministic descent rule: among `parent`'s live children with
/// the given label and type, the largest effective extent wins, ties to
/// the smallest id. The rule is self-reinforcing (an insert makes its
/// target strictly largest), which is what makes insert⟲delete
/// invertible.
fn pick_child(
    s: &Synopsis,
    dcount: &BTreeMap<SynopsisNodeId, f64>,
    parent: SynopsisNodeId,
    label: Symbol,
    vtype: ValueType,
) -> Option<SynopsisNodeId> {
    let mut best: Option<SynopsisNodeId> = None;
    for &(t, _) in &s.node(parent).children {
        let n = s.node(t);
        if !n.alive || n.label != label || n.vtype != vtype {
            continue;
        }
        // Children are sorted by id, so a strict `>` keeps the smallest
        // id among equal counts.
        if best.is_none_or(|b| eff(s, dcount, t) > eff(s, dcount, b)) {
            best = Some(t);
        }
    }
    best
}

/// Appends an empty cluster for `(label, vtype)` under `parent`, with a
/// zero-count placeholder edge so later ops in the same delta can see it
/// during descent; the final edge application installs the real average.
fn create_cluster(
    s: &mut Synopsis,
    parent: SynopsisNodeId,
    label: Symbol,
    vtype: ValueType,
) -> SynopsisNodeId {
    let id = s.push_node(SynopsisNode {
        label,
        vtype,
        count: 0.0,
        children: Vec::new(),
        parents: Vec::new(),
        vsumm: None,
        alive: true,
        version: 0,
    });
    s.add_edge(parent, id, 0.0);
    id
}

fn mark_dirty(s: &Synopsis, dirty: &mut GroupSet, id: SynopsisNodeId) {
    let n = s.node(id);
    dirty.insert((n.label, n.vtype));
}

/// Resolves the cluster chain for the base-document path root → `e`,
/// backtracking over descent choices (a merged synopsis can hold several
/// same-label chains and the greedy pick may dead-end). Returns the
/// chain including the root cluster, or `None` if no matching chain
/// exists.
fn resolve_base_path(
    s: &Synopsis,
    dcount: &BTreeMap<SynopsisNodeId, f64>,
    base: &XmlTree,
    e: NodeId,
) -> Option<Vec<SynopsisNodeId>> {
    let mut path = vec![e];
    let mut cur = e;
    while let Some(p) = base.parent(cur) {
        path.push(p);
        cur = p;
    }
    path.reverse();
    let specs: Vec<(Symbol, ValueType)> = path[1..]
        .iter()
        .map(|&n| (base.label(n), base.value_type(n)))
        .collect();
    let mut chain = vec![s.root()];
    if descend(s, dcount, s.root(), &specs, &mut chain) {
        Some(chain)
    } else {
        None
    }
}

fn descend(
    s: &Synopsis,
    dcount: &BTreeMap<SynopsisNodeId, f64>,
    cur: SynopsisNodeId,
    specs: &[(Symbol, ValueType)],
    chain: &mut Vec<SynopsisNodeId>,
) -> bool {
    let Some(&(label, vtype)) = specs.first() else {
        return true;
    };
    let mut cands: Vec<SynopsisNodeId> = s
        .node(cur)
        .children
        .iter()
        .map(|&(t, _)| t)
        .filter(|&t| {
            let n = s.node(t);
            n.alive && n.label == label && n.vtype == vtype
        })
        .collect();
    cands.sort_by(|&a, &b| {
        eff(s, dcount, b)
            .total_cmp(&eff(s, dcount, a))
            .then_with(|| a.cmp(&b))
    });
    for c in cands {
        chain.push(c);
        if descend(s, dcount, c, &specs[1..], chain) {
            return true;
        }
        chain.pop();
    }
    false
}

/// Insert-side resolution: like [`resolve_base_path`], but creates the
/// missing clusters greedily when no matching chain exists (the insert
/// target must exist afterwards either way).
fn resolve_or_create_path(
    s: &mut Synopsis,
    dcount: &BTreeMap<SynopsisNodeId, f64>,
    base: &XmlTree,
    e: NodeId,
) -> SynopsisNodeId {
    if let Some(chain) = resolve_base_path(s, dcount, base, e) {
        return *chain.last().expect("chain holds at least the root");
    }
    let mut path = vec![e];
    let mut cur = e;
    while let Some(p) = base.parent(cur) {
        path.push(p);
        cur = p;
    }
    path.reverse();
    let mut pc = s.root();
    for &n in &path[1..] {
        let (label, vtype) = (base.label(n), base.value_type(n));
        pc = pick_child(s, dcount, pc, label, vtype)
            .unwrap_or_else(|| create_cluster(s, pc, label, vtype));
    }
    pc
}

/// Re-interns the fragment's labels and text terms into the synopsis, in
/// fragment preorder — the same global order [`apply_to_tree`] follows,
/// keeping the synopsis symbol-aligned with the mutated document.
fn intern_fragment(s: &mut Synopsis, frag: &XmlTree) {
    let nodes: Vec<NodeId> = fragment_preorder(frag).collect();
    for n in nodes {
        s.intern_label(frag.label_str(n));
        if let Value::Text(tv) = frag.value(n) {
            for &term in tv.terms() {
                s.intern_term(frag.term_str(term));
            }
        }
    }
}

/// Rewrites a fragment value's term ids into the synopsis dictionary.
fn align_value(s: &Synopsis, frag: &XmlTree, v: &Value) -> Value {
    match v {
        Value::Text(tv) => Value::Text(
            tv.terms()
                .iter()
                .map(|&t| {
                    s.terms()
                        .get(frag.term_str(t))
                        .expect("fragment terms pre-interned")
                })
                .collect(),
        ),
        other => other.clone(),
    }
}

fn map_insert(
    s: &mut Synopsis,
    frag: &XmlTree,
    fnode: NodeId,
    pc: SynopsisNodeId,
    acc: &mut DeltaAccum,
) {
    let label = s
        .labels()
        .get(frag.label_str(fnode))
        .expect("fragment labels pre-interned");
    let vtype = frag.value_type(fnode);
    let (cluster, created) = match pick_child(s, &acc.dcount, pc, label, vtype) {
        Some(c) => (c, false),
        None => (create_cluster(s, pc, label, vtype), true),
    };
    if created {
        acc.created.push(cluster);
        acc.new_values.insert(cluster, Vec::new());
    }
    *acc.dcount.entry(cluster).or_insert(0.0) += 1.0;
    *acc.dedge.entry((pc, cluster)).or_insert(0.0) += 1.0;
    mark_dirty(s, &mut acc.dirty, pc);
    mark_dirty(s, &mut acc.dirty, cluster);
    acc.inserted += 1;
    if vtype != ValueType::None {
        let val = align_value(s, frag, frag.value(fnode));
        if let Some(vals) = acc.new_values.get_mut(&cluster) {
            vals.push(val);
        } else if s.node(cluster).vsumm.is_some() {
            s.node_mut(cluster)
                .vsumm
                .as_mut()
                .expect("checked above")
                .observe(&val);
        }
    }
    let children: Vec<NodeId> = frag.children(fnode).collect();
    for ch in children {
        map_insert(s, frag, ch, cluster, acc);
    }
}

fn map_delete(
    s: &mut Synopsis,
    base: &XmlTree,
    bnode: NodeId,
    pc: SynopsisNodeId,
    cluster: SynopsisNodeId,
    acc: &mut DeltaAccum,
) {
    *acc.dcount.entry(cluster).or_insert(0.0) -= 1.0;
    *acc.dedge.entry((pc, cluster)).or_insert(0.0) -= 1.0;
    mark_dirty(s, &mut acc.dirty, pc);
    mark_dirty(s, &mut acc.dirty, cluster);
    acc.deleted += 1;
    if base.value_type(bnode) != ValueType::None && s.node(cluster).vsumm.is_some() {
        // Base values are already symbol-aligned with the synopsis.
        let v = base.value(bnode).clone();
        s.node_mut(cluster)
            .vsumm
            .as_mut()
            .expect("checked above")
            .retract(&v);
    }
    let children: Vec<NodeId> = base.children(bnode).collect();
    for ch in children {
        match pick_child(s, &acc.dcount, cluster, base.label(ch), base.value_type(ch)) {
            Some(cc) => map_delete(s, base, ch, cluster, cc, acc),
            None => acc.clamped += 1, // unmappable subtree: skip it whole
        }
    }
}

/// Applies `delta` to a synopsis of `base` in place.
///
/// Cluster extents, edge averages (via exact integer pair-totals), and
/// value summaries are updated locally along the descent mapping; the
/// dirtied `(label, type)` groups are re-merged / re-compressed under
/// the original byte budgets only if a budget is exceeded, with a
/// full-pass fallback. A non-empty delta bumps the synopsis version.
///
/// Thread counts in `cfg` never change the result: the mapping is
/// sequential and the restricted build passes are deterministic, so
/// `apply_delta` is byte-identical at any `cfg.threads`.
pub fn apply_delta(
    s: &mut Synopsis,
    base: &XmlTree,
    delta: &DocDelta,
    cfg: &BuildConfig,
) -> DeltaStats {
    let mut stats = DeltaStats::default();
    if delta.ops.is_empty() {
        return stats;
    }
    validate_delta(base, delta);
    // Alignment pre-pass: intern every fragment's labels/terms in global
    // op order, exactly as `apply_to_tree` does for the mutated tree.
    for op in &delta.ops {
        if let DeltaOp::Insert { fragment, .. } = op {
            intern_fragment(s, fragment);
        }
    }
    let mut acc = DeltaAccum::default();
    // Exact max depth of the mutated document. Inserts only deepen
    // (`depth(parent) + 1 + fragment depth` — ancestors of a valid
    // insert parent all survive, so its base depth is its mutated
    // depth), but a delete can remove the deepest path, so recompute
    // the surviving depth with one forward pass over the base arena
    // (ids are created after parents), skipping deleted subtrees.
    // `//`-closure estimation iterates `max_depth` times, so an upper
    // bound is not enough: the depth must shrink back on deletion for
    // delta ⟲ inverse to restore estimates bitwise.
    let mut max_depth = if delta
        .ops
        .iter()
        .any(|op| matches!(op, DeltaOp::Delete { .. }))
    {
        let mut cut = vec![false; base.len()];
        for op in &delta.ops {
            if let DeltaOp::Delete { root } = op {
                cut[root.index()] = true;
            }
        }
        let mut depths = vec![0usize; base.len()];
        let mut max = 0;
        for id in base.all_nodes() {
            let Some(p) = base.parent(id) else { continue };
            if cut[p.index()] {
                cut[id.index()] = true;
            }
            if cut[id.index()] {
                continue;
            }
            let d = depths[p.index()] + 1;
            depths[id.index()] = d;
            max = max.max(d);
        }
        max
    } else {
        s.max_depth()
    };
    for op in &delta.ops {
        match op {
            DeltaOp::Insert { parent, fragment } => {
                let pc = resolve_or_create_path(s, &acc.dcount, base, *parent);
                map_insert(s, fragment, fragment.root(), pc, &mut acc);
                max_depth = max_depth.max(base.depth(*parent) + 1 + fragment.max_depth());
            }
            DeltaOp::Delete { root } => match resolve_base_path(s, &acc.dcount, base, *root) {
                Some(chain) => {
                    let cluster = *chain.last().expect("chain holds the target");
                    let pc = chain[chain.len() - 2];
                    map_delete(s, base, *root, pc, cluster, &mut acc);
                }
                None => acc.clamped += 1, // unmappable delete: skip the op
            },
        }
    }
    // Edge averages: reconstruct integer pair-totals from the stored
    // averages (`t = round(avg · count)` — totals are integers well below
    // 2⁵³, and an unchanged edge's `t/c` reproduces the original division
    // bitwise), apply the deltas, re-divide by the new extent.
    let affected: BTreeSet<SynopsisNodeId> = acc
        .dcount
        .keys()
        .copied()
        .chain(acc.dedge.keys().map(|&(u, _)| u))
        .collect();
    let mut edge_updates: Vec<(SynopsisNodeId, SynopsisNodeId, f64)> = Vec::new();
    for &u in &affected {
        let c_old = s.node(u).count;
        let c_new = (c_old + acc.dcount.get(&u).copied().unwrap_or(0.0)).max(0.0);
        for &(v, avg) in &s.node(u).children {
            let t_old = (avg * c_old).round();
            let t_new = t_old + acc.dedge.get(&(u, v)).copied().unwrap_or(0.0);
            let new_avg = if c_new > 0.0 && t_new > 0.0 {
                t_new / c_new
            } else {
                0.0
            };
            edge_updates.push((u, v, new_avg));
        }
    }
    for (&c, &d) in &acc.dcount {
        let cur = s.node(c).count;
        if cur + d < -0.5 {
            stats.clamped += 1;
        }
        s.node_mut(c).count = (cur + d).max(0.0);
    }
    for (u, v, avg) in edge_updates {
        s.set_edge(u, v, avg);
    }
    // Tombstone clusters whose extent emptied.
    let root = s.root();
    let touched: Vec<SynopsisNodeId> = acc.dcount.keys().copied().collect();
    for c in touched {
        if c == root || !s.node(c).alive || s.node(c).count > 0.0 {
            continue;
        }
        let children: Vec<SynopsisNodeId> = s.node(c).children.iter().map(|&(t, _)| t).collect();
        for v in children {
            s.remove_edge(c, v);
        }
        let parents = s.node(c).parents.clone();
        for p in parents {
            s.remove_edge(p, c);
        }
        let n = s.node_mut(c);
        n.alive = false;
        n.vsumm = None;
        stats.removed_clusters += 1;
    }
    // Summaries for surviving created clusters (default parameters, the
    // reference-construction byte cap).
    for (&c, vals) in &acc.new_values {
        if !s.node(c).alive || vals.is_empty() {
            continue;
        }
        let refs: Vec<&Value> = vals.iter().collect();
        let vt = s.node(c).vtype;
        if let Some(mut vs) = ValueSummary::build(&refs, vt) {
            let cap = match vt {
                ValueType::String | ValueType::Text => NEW_SUMMARY_CAP * 4,
                _ => NEW_SUMMARY_CAP,
            };
            if vs.size_bytes() > cap {
                vs.compress_to_bytes(cap);
            }
            s.node_mut(c).vsumm = Some(vs);
        }
    }
    if max_depth != s.max_depth() {
        s.set_max_depth(max_depth);
    }
    s.bump_version();
    stats.inserted_elements = acc.inserted;
    stats.deleted_elements = acc.deleted;
    stats.new_clusters = acc.created.len();
    stats.dirty_groups = acc.dirty.len();
    stats.clamped += acc.clamped;
    // Dirty-region budget passes, full-pass fallback.
    if s.structural_bytes() > cfg.b_str {
        stats.remerged = true;
        dstats::REMERGES.inc();
        structure_value_merge_groups(s, cfg, &acc.dirty);
        if s.structural_bytes() > cfg.b_str {
            structure_value_merge(s, cfg);
        }
    }
    if s.value_bytes() > cfg.b_val {
        stats.recompressed = true;
        dstats::RECOMPRESSIONS.inc();
        value_compression_groups(s, cfg, &acc.dirty);
        if s.value_bytes() > cfg.b_val {
            value_compression(s, cfg);
        }
    }
    dstats::APPLIED.inc();
    dstats::INSERTED.add(stats.inserted_elements as u64);
    dstats::DELETED.add(stats.deleted_elements as u64);
    xcluster_obs::debug!(
        "delta",
        "applied: +{} -{} elements, {} dirty groups, {} new / {} removed clusters, v{}",
        stats.inserted_elements,
        stats.deleted_elements,
        stats.dirty_groups,
        stats.new_clusters,
        stats.removed_clusters,
        s.version()
    );
    debug_assert_eq!(s.check_consistency(), Ok(()));
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synopsis::SynopsisNode;
    use xcluster_xml::{Interner, Value, ValueType};

    fn node(label: xcluster_xml::Symbol, count: f64) -> SynopsisNode {
        SynopsisNode {
            label,
            vtype: ValueType::None,
            count,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        }
    }

    /// root with two a-nodes feeding a shared leaf b.
    fn structural(c1: f64, c2: f64, n1: f64, n2: f64) -> (Synopsis, usize, usize) {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let al = labels.intern("a");
        let bl = labels.intern("b");
        let mut s = Synopsis::new(labels, rl, 4);
        let a1 = s.push_node(node(al, n1));
        let a2 = s.push_node(node(al, n2));
        let b = s.push_node(node(bl, 5.0));
        s.add_edge(0, a1, n1);
        s.add_edge(0, a2, n2);
        s.add_edge(a1, b, c1);
        s.add_edge(a2, b, c2);
        (s, a1, a2)
    }

    #[test]
    fn identical_centroids_merge_for_free() {
        let (s, a1, a2) = structural(2.0, 2.0, 3.0, 3.0);
        let c = evaluate_merge(&s, a1, a2);
        assert!(c.delta.abs() < 1e-9, "delta {}", c.delta);
        assert!(c.bytes_saved > 0);
    }

    #[test]
    fn divergent_centroids_cost_more() {
        let (s_close, a1, a2) = structural(2.0, 2.5, 3.0, 3.0);
        let (s_far, b1, b2) = structural(2.0, 9.0, 3.0, 3.0);
        let close = evaluate_merge(&s_close, a1, a2).delta;
        let far = evaluate_merge(&s_far, b1, b2).delta;
        assert!(far > close, "{far} vs {close}");
        assert!(close > 0.0);
    }

    #[test]
    fn delta_matches_bruteforce_structural() {
        // Hand-compute the paper formula for a small case.
        let (s, a1, a2) = structural(2.0, 4.0, 3.0, 1.0);
        let c = evaluate_merge(&s, a1, a2);
        // cw(b) = (3*2 + 1*4)/4 = 2.5; trivial predicate σ = 1.
        // targets: self (1,1,1) and b (2,4,2.5).
        // Δ = 3[(1-1)² + (2-2.5)²] + 1[(1-1)² + (4-2.5)²]
        let expected = 3.0 * 0.25 + 1.0 * 2.25;
        assert!(
            (c.delta - expected).abs() < 1e-9,
            "{} vs {expected}",
            c.delta
        );
    }

    #[test]
    fn extent_weights_matter() {
        // Same centroid divergence, bigger extents → bigger delta.
        let (s_small, a1, a2) = structural(2.0, 4.0, 1.0, 1.0);
        let (s_big, b1, b2) = structural(2.0, 4.0, 10.0, 10.0);
        assert!(evaluate_merge(&s_big, b1, b2).delta > evaluate_merge(&s_small, a1, a2).delta);
    }

    #[test]
    fn value_divergence_detected_on_leaves() {
        // Two childless value clusters with disjoint numeric ranges: the
        // paper's raw formula would give Δ = 0; the virtual self child
        // must make it positive.
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let mk_vals =
            |vals: &[u64]| -> Vec<Value> { vals.iter().map(|&v| Value::Numeric(v)).collect() };
        let v1 = mk_vals(&[1, 2, 3]);
        let v2 = mk_vals(&[1000, 2000]);
        let y1 = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 3.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&v1.iter().collect::<Vec<_>>(), ValueType::Numeric),
            alive: true,
            version: 0,
        });
        let y2 = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 2.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&v2.iter().collect::<Vec<_>>(), ValueType::Numeric),
            alive: true,
            version: 0,
        });
        s.add_edge(0, y1, 3.0);
        s.add_edge(0, y2, 2.0);
        let c = evaluate_merge(&s, y1, y2);
        assert!(
            c.delta > 0.0,
            "leaf value divergence must cost: {}",
            c.delta
        );
    }

    #[test]
    fn similar_value_leaves_are_cheap() {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let vals: Vec<Value> = (0..20).map(|i| Value::Numeric(1990 + i % 10)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        for _ in 0..2 {
            let y = s.push_node(SynopsisNode {
                label: yl,
                vtype: ValueType::Numeric,
                count: 20.0,
                children: Vec::new(),
                parents: Vec::new(),
                vsumm: ValueSummary::build(&refs, ValueType::Numeric),
                alive: true,
                version: 0,
            });
            s.add_edge(0, y, 20.0);
        }
        let ids: Vec<_> = s.live_nodes().filter(|&i| i != 0).collect();
        let c = evaluate_merge(&s, ids[0], ids[1]);
        assert!(
            c.delta < 1e-6,
            "identical distributions merge freely: {}",
            c.delta
        );
    }

    #[test]
    fn marginal_loss_normalizes_by_bytes() {
        let (s, a1, a2) = structural(2.0, 4.0, 3.0, 1.0);
        let c = evaluate_merge(&s, a1, a2);
        assert!((c.marginal_loss() - c.delta / c.bytes_saved as f64).abs() < 1e-12);
    }

    #[test]
    fn compression_candidate_scales_with_extent_and_fanout() {
        let mut labels = Interner::new();
        let rl = labels.intern("root");
        let yl = labels.intern("y");
        let mut s = Synopsis::new(labels, rl, 2);
        let vals: Vec<Value> = (0..64).map(|i| Value::Numeric(i * i)).collect();
        let refs: Vec<&Value> = vals.iter().collect();
        let y = s.push_node(SynopsisNode {
            label: yl,
            vtype: ValueType::Numeric,
            count: 64.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: ValueSummary::build(&refs, ValueType::Numeric),
            alive: true,
            version: 0,
        });
        s.add_edge(0, y, 64.0);
        let c = evaluate_compression(&s, y).unwrap();
        assert!(c.bytes_saved > 0);
        assert!(c.delta >= 0.0);
        // No summary → no candidate.
        assert!(evaluate_compression(&s, s.root()).is_none());
    }

    // --- incremental maintenance ---

    use crate::codec::encode_synopsis;
    use crate::estimate::estimate;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::parse_twig;
    use xcluster_xml::parse;

    fn find(t: &xcluster_xml::XmlTree, label: &str) -> xcluster_xml::NodeId {
        t.all_nodes()
            .find(|&n| t.label_str(n) == label)
            .unwrap_or_else(|| panic!("no node labelled {label}"))
    }

    fn huge_budget() -> BuildConfig {
        BuildConfig {
            b_str: usize::MAX / 2,
            b_val: usize::MAX / 2,
            ..BuildConfig::default()
        }
    }

    #[test]
    fn apply_to_tree_replays_inserts_and_deletes() {
        let base = parse("<r><a><x>1</x></a><b><x>2</x></b></r>").unwrap();
        let frag = parse("<c><y>9</y></c>").unwrap();
        let delta = DocDelta::new(vec![
            DeltaOp::Delete {
                root: find(&base, "b"),
            },
            DeltaOp::Insert {
                parent: find(&base, "a"),
                fragment: frag,
            },
        ]);
        let patch = apply_to_tree(&base, &delta);
        // 5 base nodes − 2 deleted + 2 inserted.
        assert_eq!(patch.tree.len(), 5);
        assert_eq!(patch.inserted_roots.len(), 1);
        let ir = patch.inserted_roots[0];
        assert_eq!(patch.tree.label_str(ir), "c");
        assert_eq!(patch.tree.parent(ir), patch.remap[find(&base, "a").index()]);
        // Deleted nodes have no image; survivors keep labels and values.
        assert!(patch.remap[find(&base, "b").index()].is_none());
        let xa = find(&base, "x");
        let nx = patch.remap[xa.index()].unwrap();
        assert_eq!(patch.tree.label_str(nx), "x");
        assert_eq!(patch.tree.value(nx), base.value(xa));
        // Base symbols survive unchanged (alignment discipline).
        assert_eq!(patch.tree.label(nx), base.label(xa));
    }

    #[test]
    fn empty_delta_is_a_bitwise_identity() {
        let base = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
        let mut s = reference_synopsis(&base, &ReferenceConfig::default());
        let before = encode_synopsis(&s);
        let stats = apply_delta(&mut s, &base, &DocDelta::default(), &huge_budget());
        assert_eq!(stats, DeltaStats::default());
        assert_eq!(s.version(), 0);
        assert_eq!(encode_synopsis(&s), before);
    }

    #[test]
    fn insert_then_inverse_restores_estimates_bitwise() {
        let base = parse("<r><a><x>1</x><x>2</x></a><a><x>3</x></a><b><x>4</x></b></r>").unwrap();
        let s0 = reference_synopsis(&base, &ReferenceConfig::default());
        let mut s = s0.clone();
        let cfg = huge_budget();
        let delta = DocDelta::new(vec![
            DeltaOp::Insert {
                parent: find(&base, "a"),
                fragment: parse("<x>5</x>").unwrap(),
            },
            DeltaOp::Insert {
                parent: find(&base, "b"),
                fragment: parse("<c><y>7</y></c>").unwrap(),
            },
        ]);
        let patch = apply_to_tree(&base, &delta);
        apply_delta(&mut s, &base, &delta, &cfg);
        assert!(estimate(&s, &parse_twig("//x", base.terms()).unwrap()) > 4.0);
        let inv = inverse_delta(&base, &delta, &patch);
        apply_delta(&mut s, &patch.tree, &inv, &cfg);
        assert_eq!(s.live_nodes().count(), s0.live_nodes().count());
        for q in [
            "//a",
            "//x",
            "/a/x",
            "//b/x",
            "//a{/x}{/x}",
            "//x[in 0..10]",
        ] {
            let twig = parse_twig(q, base.terms()).unwrap();
            let (got, want) = (estimate(&s, &twig), estimate(&s0, &twig));
            assert_eq!(got.to_bits(), want.to_bits(), "{q}: {got} vs {want}");
        }
        assert_eq!(s.version(), 2);
        assert_eq!(s.check_consistency(), Ok(()));
    }

    #[test]
    fn max_depth_tracks_the_mutated_document_exactly() {
        // `//`-closure estimation iterates max_depth times, so it must
        // shrink back when the deepest subtree is deleted — an upper
        // bound would leak into descendant estimates.
        let base = parse("<r><a><b><c><d>1</d></c></b></a><e><f>2</f></e></r>").unwrap();
        let s0 = reference_synopsis(&base, &ReferenceConfig::default());
        assert_eq!(s0.max_depth(), base.max_depth());
        let cfg = huge_budget();
        // Deepening insert raises it to the new document depth.
        let deepen = DocDelta::new(vec![DeltaOp::Insert {
            parent: find(&base, "d"),
            fragment: parse("<g><h>3</h></g>").unwrap(),
        }]);
        let patch = apply_to_tree(&base, &deepen);
        let mut s = s0.clone();
        apply_delta(&mut s, &base, &deepen, &cfg);
        assert_eq!(s.max_depth(), patch.tree.max_depth());
        // Deleting the (now deeper) spine shrinks it back below the
        // original depth, exactly matching the mutated document.
        let cut = DocDelta::new(vec![DeltaOp::Delete {
            root: find(&patch.tree, "b"),
        }]);
        let cut_patch = apply_to_tree(&patch.tree, &cut);
        apply_delta(&mut s, &patch.tree, &cut, &cfg);
        assert_eq!(s.max_depth(), cut_patch.tree.max_depth());
        assert_eq!(s.max_depth(), 2); // r → e → f is the surviving spine
    }

    #[test]
    fn cluster_counts_track_the_document_size() {
        let base = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
        let mut s = reference_synopsis(&base, &ReferenceConfig::default());
        let delta = DocDelta::new(vec![DeltaOp::Insert {
            parent: find(&base, "a"),
            fragment: parse("<x>3</x>").unwrap(),
        }]);
        let patch = apply_to_tree(&base, &delta);
        let stats = apply_delta(&mut s, &base, &delta, &huge_budget());
        assert_eq!(stats.inserted_elements, 1);
        assert_eq!(stats.clamped, 0);
        let total: f64 = s.live_nodes().map(|id| s.node(id).count).sum();
        assert_eq!(total, patch.tree.len() as f64);
    }

    #[test]
    fn delete_to_zero_tombstones_the_cluster() {
        let base = parse("<r><a><x>1</x></a><b><x>2</x></b></r>").unwrap();
        let mut s = reference_synopsis(&base, &ReferenceConfig::default());
        let live_before = s.live_nodes().count();
        let delta = DocDelta::new(vec![DeltaOp::Delete {
            root: find(&base, "b"),
        }]);
        let stats = apply_delta(&mut s, &base, &delta, &huge_budget());
        assert_eq!(stats.deleted_elements, 2);
        assert_eq!(stats.removed_clusters, 2);
        assert_eq!(s.live_nodes().count(), live_before - 2);
        let q = parse_twig("//b/x", base.terms()).unwrap();
        assert_eq!(estimate(&s, &q), 0.0);
        assert_eq!(s.check_consistency(), Ok(()));
    }

    #[test]
    fn new_label_insert_creates_a_cluster_with_a_summary() {
        let base = parse("<r><a><x>1</x></a></r>").unwrap();
        let mut s = reference_synopsis(&base, &ReferenceConfig::default());
        let delta = DocDelta::new(vec![DeltaOp::Insert {
            parent: find(&base, "r"),
            fragment: parse("<z>42</z>").unwrap(),
        }]);
        let stats = apply_delta(&mut s, &base, &delta, &huge_budget());
        assert_eq!(stats.new_clusters, 1);
        let zl = s.labels().get("z").expect("new label interned");
        let z = s
            .live_nodes()
            .find(|&id| s.node(id).label == zl)
            .expect("new cluster live");
        assert_eq!(s.node(z).count, 1.0);
        assert!(s.node(z).vsumm.is_some());
        // The mutated tree interns the same symbol, so queries resolve.
        let patch = apply_to_tree(&base, &delta);
        let q = parse_twig("//z[in 40..50]", patch.tree.terms()).unwrap();
        assert_eq!(estimate(&s, &q), 1.0);
        assert_eq!(s.check_consistency(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "cannot delete the document root")]
    fn deleting_the_document_root_panics() {
        let base = parse("<r><a></a></r>").unwrap();
        let delta = DocDelta::new(vec![DeltaOp::Delete { root: base.root() }]);
        apply_to_tree(&base, &delta);
    }

    #[test]
    #[should_panic(expected = "nested delete roots")]
    fn nested_delete_roots_panic() {
        let base = parse("<r><a><x>1</x></a></r>").unwrap();
        let delta = DocDelta::new(vec![
            DeltaOp::Delete {
                root: find(&base, "a"),
            },
            DeltaOp::Delete {
                root: find(&base, "x"),
            },
        ]);
        apply_to_tree(&base, &delta);
    }

    #[test]
    #[should_panic(expected = "lies in a deleted subtree")]
    fn inserting_under_a_deleted_subtree_panics() {
        let base = parse("<r><a><x>1</x></a></r>").unwrap();
        let delta = DocDelta::new(vec![
            DeltaOp::Delete {
                root: find(&base, "a"),
            },
            DeltaOp::Insert {
                parent: find(&base, "x"),
                fragment: parse("<y>2</y>").unwrap(),
            },
        ]);
        apply_to_tree(&base, &delta);
    }
}
