//! Automated structural/value budget allocation (paper Section 4.3,
//! closing remark): *"it is possible to invoke XCLUSTERBUILD with a
//! unified total space budget B and let the construction process
//! determine automatically the ratio of structural- to value-storage
//! budget. One plausible approach … would be to perform a binary search
//! in the range of possible Bstr/Bval ratios, based on the observed
//! estimation error on a sample workload."*
//!
//! The paper leaves this to future work; this module implements exactly
//! that proposal: a golden-section-style search over the structural
//! fraction `ρ = Bstr / B`, scoring each candidate synopsis on a sample
//! workload with the Section 6.1 error metric.

use crate::build::{build_synopsis, BuildConfig};
use crate::metrics::{evaluate_workload, EvalOptions};
use crate::synopsis::Synopsis;
use xcluster_query::Workload;

/// Configuration of the unified-budget search.
#[derive(Debug, Clone)]
pub struct AutoSplitConfig {
    /// Total budget `B` in bytes.
    pub total_budget: usize,
    /// Search iterations (each costs two builds in the first round and
    /// one afterwards).
    pub iterations: usize,
    /// Inclusive search range for the structural fraction ρ.
    pub rho_range: (f64, f64),
    /// Forwarded build parameters (`Hm`, `Hl`, chunking).
    pub build: BuildConfig,
}

impl Default for AutoSplitConfig {
    fn default() -> Self {
        AutoSplitConfig {
            total_budget: 200 * 1024,
            iterations: 6,
            rho_range: (0.02, 0.6),
            build: BuildConfig::default(),
        }
    }
}

/// Outcome of the automated split.
#[derive(Debug)]
pub struct AutoSplitResult {
    /// The winning synopsis.
    pub synopsis: Synopsis,
    /// The chosen structural fraction ρ.
    pub rho: f64,
    /// Sample-workload average relative error of the winner.
    pub sample_error: f64,
    /// Every `(ρ, error)` probe evaluated, in probe order.
    pub probes: Vec<(f64, f64)>,
}

/// Builds a synopsis under a unified budget, choosing `Bstr = ρ·B`,
/// `Bval = (1-ρ)·B` by golden-section search on the sample workload
/// error. The sample should be disjoint from (but distributed like) the
/// evaluation workload.
pub fn build_with_unified_budget(
    reference: &Synopsis,
    sample: &Workload,
    cfg: &AutoSplitConfig,
) -> AutoSplitResult {
    let mut probes: Vec<(f64, f64)> = Vec::new();
    let mut best: Option<(f64, f64, Synopsis)> = None;
    let eval =
        |rho: f64, probes: &mut Vec<(f64, f64)>, best: &mut Option<(f64, f64, Synopsis)>| -> f64 {
            // Reuse earlier probes at (almost) the same ρ.
            if let Some(&(_, e)) = probes.iter().find(|(r, _)| (r - rho).abs() < 1e-3) {
                return e;
            }
            let built = build_synopsis(
                reference.clone(),
                &BuildConfig {
                    b_str: (cfg.total_budget as f64 * rho) as usize,
                    b_val: (cfg.total_budget as f64 * (1.0 - rho)) as usize,
                    ..cfg.build.clone()
                },
            );
            let err = evaluate_workload(&built, sample, &EvalOptions::default())
                .report
                .overall_rel;
            probes.push((rho, err));
            if best.as_ref().is_none_or(|(_, e, _)| err < *e) {
                *best = Some((rho, err, built));
            }
            err
        };

    // Golden-section search over ρ (the error landscape is noisy but
    // roughly unimodal: too little structure loses correlations, too
    // little value budget loses the distributions).
    const PHI: f64 = 0.618_033_988_749_894_9;
    let (mut lo, mut hi) = cfg.rho_range;
    let mut a = hi - PHI * (hi - lo);
    let mut b = lo + PHI * (hi - lo);
    let mut fa = eval(a, &mut probes, &mut best);
    let mut fb = eval(b, &mut probes, &mut best);
    for _ in 0..cfg.iterations.saturating_sub(2) {
        if fa <= fb {
            hi = b;
            b = a;
            fb = fa;
            a = hi - PHI * (hi - lo);
            fa = eval(a, &mut probes, &mut best);
        } else {
            lo = a;
            a = b;
            fa = fb;
            b = lo + PHI * (hi - lo);
            fb = eval(b, &mut probes, &mut best);
        }
    }
    let (rho, sample_error, synopsis) = best.expect("at least one probe");
    AutoSplitResult {
        synopsis,
        rho,
        sample_error,
        probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::{workload, EvalIndex, WorkloadConfig};

    fn setup() -> (Synopsis, Workload, Workload) {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 80,
            seed: 303,
        });
        let reference = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(d.value_paths.clone()),
                ..ReferenceConfig::default()
            },
        );
        let idx = EvalIndex::build(&d.tree);
        let mk = |seed| {
            workload::generate_positive(
                &d.tree,
                &idx,
                &WorkloadConfig {
                    num_queries: 40,
                    seed,
                    ..WorkloadConfig::default()
                },
            )
        };
        (reference, mk(1), mk(2))
    }

    #[test]
    fn unified_budget_respects_total() {
        let (reference, sample, _) = setup();
        let cfg = AutoSplitConfig {
            total_budget: 20 * 1024,
            iterations: 4,
            ..AutoSplitConfig::default()
        };
        let result = build_with_unified_budget(&reference, &sample, &cfg);
        // Structural side always fits; the value side may rest on its
        // incompressible floor.
        assert!(result.synopsis.structural_bytes() <= cfg.total_budget);
        assert!((0.02..=0.6).contains(&result.rho));
        assert!(result.probes.len() >= 3);
    }

    #[test]
    fn chosen_rho_is_no_worse_than_probes() {
        let (reference, sample, holdout) = setup();
        let cfg = AutoSplitConfig {
            total_budget: 24 * 1024,
            iterations: 5,
            ..AutoSplitConfig::default()
        };
        let result = build_with_unified_budget(&reference, &sample, &cfg);
        for &(_, err) in &result.probes {
            assert!(result.sample_error <= err + 1e-9);
        }
        // And it generalizes sanely to a holdout workload.
        let holdout_err = evaluate_workload(&result.synopsis, &holdout, &EvalOptions::default())
            .report
            .overall_rel;
        assert!(holdout_err.is_finite());
    }
}
