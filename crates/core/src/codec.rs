//! Binary serialization for [`Synopsis`] values.
//!
//! A saved synopsis is self-contained: it carries the label interner and
//! term dictionary, every live cluster (compacted — tombstones are not
//! written), its edges, and its value summary. The format is a simple
//! little-endian layout with a magic/version header; it exists so a
//! synopsis can be built once (expensive) and handed to an optimizer
//! process (cheap), which is the paper's deployment story — and it doubles
//! as a reality check on the byte-level size model in
//! `xcluster_summaries::footprint`.

use crate::synopsis::{Synopsis, SynopsisNode};
use std::fmt;
use xcluster_summaries::{
    Bucket, Ebth, Histogram, Pst, SampleSummary, ValueSummary, WaveletSummary,
};
use xcluster_xml::{Interner, Symbol, ValueType};

const MAGIC: &[u8; 4] = b"XCLU";
/// Format 1: the original layout, no maintenance version.
const FMT_V1: u8 = 1;
/// Format 2: adds the `u64` synopsis maintenance version right after the
/// format byte. Format-1 images still decode (as version 0).
const FMT_V2: u8 = 2;

/// A malformed or incompatible synopsis image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Byte offset where decoding failed.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "synopsis decode error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn interner(&mut self, i: &Interner) {
        self.u32(i.len() as u32);
        for (_, s) in i.iter() {
            self.str(s);
        }
    }
}

/// Serializes a synopsis (live nodes only) to bytes.
pub fn encode_synopsis(s: &Synopsis) -> Vec<u8> {
    let mut w = Writer { buf: Vec::new() };
    w.buf.extend_from_slice(MAGIC);
    w.u8(FMT_V2);
    w.u64(s.version());
    w.interner(s.labels());
    w.interner(s.terms());
    w.u32(s.max_depth() as u32);

    // Compact live-node remapping (root first for a stable entry point).
    let live: Vec<usize> = std::iter::once(s.root())
        .chain(s.live_nodes().filter(|&i| i != s.root()))
        .collect();
    let mut remap = vec![u32::MAX; s.arena_len()];
    for (new, &old) in live.iter().enumerate() {
        remap[old] = new as u32;
    }
    w.u32(live.len() as u32);
    for &old in &live {
        let n = s.node(old);
        w.u32(n.label.0);
        w.u8(match n.vtype {
            ValueType::None => 0,
            ValueType::Numeric => 1,
            ValueType::String => 2,
            ValueType::Text => 3,
        });
        w.f64(n.count);
        w.u32(n.children.len() as u32);
        for &(t, c) in &n.children {
            w.u32(remap[t]);
            w.f64(c);
        }
        encode_summary(&mut w, n.vsumm.as_ref());
    }
    w.buf
}

fn encode_summary(w: &mut Writer, vs: Option<&ValueSummary>) {
    match vs {
        None => w.u8(0),
        Some(ValueSummary::Numeric(h)) => {
            w.u8(1);
            w.f64(h.total());
            w.u32(h.num_buckets() as u32);
            for b in h.buckets() {
                w.u64(b.lo);
                w.u64(b.hi);
                w.f64(b.count);
            }
        }
        Some(ValueSummary::NumericWavelet(wav)) => {
            w.u8(2);
            let (lo, width, cells, coefs, total) = wav.to_parts();
            w.u64(lo);
            w.u64(width);
            w.u32(cells as u32);
            w.f64(total);
            w.u32(coefs.len() as u32);
            for (i, v) in coefs {
                w.u32(i);
                w.f64(v);
            }
        }
        Some(ValueSummary::NumericSample(sm)) => {
            w.u8(3);
            let (sample, total, state) = sm.to_parts();
            w.f64(total);
            w.u64(state);
            w.u32(sample.len() as u32);
            for &v in sample {
                w.u64(v);
            }
        }
        Some(ValueSummary::String(p)) => {
            w.u8(4);
            let (n, depth, root_occ, preorder) = p.to_parts();
            w.f64(n);
            w.u32(depth as u32);
            w.f64(root_occ);
            w.u32(preorder.len() as u32);
            for (d, ch, count, occ) in preorder {
                w.u32(d as u32);
                w.u8(ch);
                w.f64(count);
                w.f64(occ);
            }
        }
        Some(ValueSummary::Text(e)) => {
            w.u8(5);
            let (top, runs, uniform_sum, uniform_count, elements) = e.to_parts();
            w.f64(elements);
            w.f64(uniform_sum);
            w.u64(uniform_count);
            w.u32(top.len() as u32);
            for (t, f) in top {
                w.u32(t);
                w.f64(f);
            }
            w.u32(runs.len() as u32);
            for (a, b) in runs {
                w.u32(a);
                w.u32(b);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn fail<T>(&self, message: impl Into<String>) -> Result<T, CodecError> {
        Err(CodecError {
            offset: self.pos,
            message: message.into(),
        })
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.pos + n > self.buf.len() {
            return self.fail("unexpected end of input");
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<&'a str, CodecError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return self.fail("string too long");
        }
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).or_else(|_| self.fail("invalid UTF-8"))
    }
    fn interner(&mut self) -> Result<Interner, CodecError> {
        let n = self.u32()? as usize;
        if n > 1 << 24 {
            return self.fail("interner too large");
        }
        let mut i = Interner::new();
        for _ in 0..n {
            let s = self.str()?;
            i.intern(s);
        }
        Ok(i)
    }
}

/// Deserializes a synopsis produced by [`encode_synopsis`].
pub fn decode_synopsis(bytes: &[u8]) -> Result<Synopsis, CodecError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return r.fail("bad magic (not a synopsis file)");
    }
    let version = match r.u8()? {
        FMT_V1 => 0,
        FMT_V2 => r.u64()?,
        _ => return r.fail("unsupported version"),
    };
    let labels = r.interner()?;
    let terms = r.interner()?;
    let max_depth = r.u32()? as usize;
    let num_nodes = r.u32()? as usize;
    if num_nodes == 0 {
        return r.fail("synopsis has no nodes");
    }
    if num_nodes > 1 << 26 {
        return r.fail("node count too large");
    }
    let mut nodes: Vec<SynopsisNode> = Vec::with_capacity(num_nodes);
    for _ in 0..num_nodes {
        let label = Symbol(r.u32()?);
        if label.index() >= labels.len() {
            return r.fail("label symbol out of range");
        }
        let vtype = match r.u8()? {
            0 => ValueType::None,
            1 => ValueType::Numeric,
            2 => ValueType::String,
            3 => ValueType::Text,
            t => return r.fail(format!("bad value-type tag {t}")),
        };
        let count = r.f64()?;
        let num_children = r.u32()? as usize;
        if num_children > num_nodes {
            return r.fail("child count exceeds node count");
        }
        let mut children = Vec::with_capacity(num_children);
        for _ in 0..num_children {
            let t = r.u32()? as usize;
            if t >= num_nodes {
                return r.fail("edge target out of range");
            }
            let c = r.f64()?;
            children.push((t, c));
        }
        children.sort_unstable_by_key(|&(t, _)| t);
        let vsumm = decode_summary(&mut r)?;
        nodes.push(SynopsisNode {
            label,
            vtype,
            count,
            children,
            parents: Vec::new(),
            vsumm,
            alive: true,
            version: 0,
        });
    }
    if r.pos != bytes.len() {
        return r.fail("trailing bytes after synopsis");
    }
    // Rebuild parent lists.
    let edges: Vec<(usize, usize)> = nodes
        .iter()
        .enumerate()
        .flat_map(|(i, n)| n.children.iter().map(move |&(t, _)| (i, t)))
        .collect();
    for (p, t) in edges {
        let parents = &mut nodes[t].parents;
        if let Err(i) = parents.binary_search(&p) {
            parents.insert(i, p);
        }
    }
    // Assemble via the public construction API: node 0 is the root.
    let root_label = nodes[0].label;
    let mut s = Synopsis::new(labels, root_label, max_depth);
    s.set_terms(terms);
    s.set_version(version);
    *s.node_mut(0) = nodes[0].clone();
    for n in nodes.into_iter().skip(1) {
        s.push_node(n);
    }
    s.check_consistency().map_err(|e| CodecError {
        offset: bytes.len(),
        message: format!("inconsistent synopsis: {e}"),
    })?;
    Ok(s)
}

fn decode_summary(r: &mut Reader) -> Result<Option<ValueSummary>, CodecError> {
    Ok(match r.u8()? {
        0 => None,
        1 => {
            let total = r.f64()?;
            let n = r.u32()? as usize;
            let mut buckets = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                buckets.push(Bucket {
                    lo: r.u64()?,
                    hi: r.u64()?,
                    count: r.f64()?,
                });
            }
            Some(ValueSummary::Numeric(Histogram::from_parts(buckets, total)))
        }
        2 => {
            let lo = r.u64()?;
            let width = r.u64()?;
            let cells = r.u32()? as usize;
            if !cells.is_power_of_two() {
                return r.fail("wavelet cell count not a power of two");
            }
            let total = r.f64()?;
            let n = r.u32()? as usize;
            let mut coefs = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                coefs.push((r.u32()?, r.f64()?));
            }
            Some(ValueSummary::NumericWavelet(WaveletSummary::from_parts(
                lo, width, cells, coefs, total,
            )))
        }
        3 => {
            let total = r.f64()?;
            let state = r.u64()?;
            let n = r.u32()? as usize;
            let mut sample = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                sample.push(r.u64()?);
            }
            Some(ValueSummary::NumericSample(SampleSummary::from_parts(
                sample, total, state,
            )))
        }
        4 => {
            let num_strings = r.f64()?;
            let depth = r.u32()? as usize;
            let root_occ = r.f64()?;
            let n = r.u32()? as usize;
            let mut preorder = Vec::with_capacity(n.min(1 << 22));
            let mut expected_max_depth = 1u32;
            for _ in 0..n {
                let d = r.u32()?;
                if d == 0 || d > expected_max_depth {
                    return r.fail("malformed PST preorder (depth jump)");
                }
                expected_max_depth = d + 1;
                preorder.push((d as u16, r.u8()?, r.f64()?, r.f64()?));
            }
            Some(ValueSummary::String(Pst::from_parts(
                num_strings,
                depth,
                root_occ,
                preorder,
            )))
        }
        5 => {
            let elements = r.f64()?;
            let uniform_sum = r.f64()?;
            let uniform_count = r.u64()?;
            let n = r.u32()? as usize;
            let mut top = Vec::with_capacity(n.min(1 << 22));
            for _ in 0..n {
                top.push((r.u32()?, r.f64()?));
            }
            let m = r.u32()? as usize;
            let mut runs = Vec::with_capacity(m.min(1 << 22));
            for _ in 0..m {
                let a = r.u32()?;
                let b = r.u32()?;
                if b <= a {
                    return r.fail("empty RLE run");
                }
                runs.push((a, b));
            }
            Some(ValueSummary::Text(Ebth::from_parts(
                top,
                runs,
                uniform_sum,
                uniform_count,
                elements,
            )))
        }
        t => return r.fail(format!("bad summary tag {t}")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_synopsis, BuildConfig};
    use crate::estimate::estimate;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::parse_twig;

    fn sample_synopsis() -> Synopsis {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 40,
            seed: 77,
        });
        let reference = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(d.value_paths.clone()),
                ..ReferenceConfig::default()
            },
        );
        build_synopsis(
            reference,
            &BuildConfig {
                b_str: 3 * 1024,
                b_val: 10 * 1024,
                ..BuildConfig::default()
            },
        )
    }

    #[test]
    fn round_trip_preserves_structure() {
        let s = sample_synopsis();
        let bytes = encode_synopsis(&s);
        let d = decode_synopsis(&bytes).unwrap();
        assert_eq!(d.num_nodes(), s.num_nodes());
        assert_eq!(d.num_edges(), s.num_edges());
        assert_eq!(d.num_value_nodes(), s.num_value_nodes());
        assert_eq!(d.max_depth(), s.max_depth());
        assert_eq!(d.structural_bytes(), s.structural_bytes());
        assert_eq!(d.value_bytes(), s.value_bytes());
    }

    #[test]
    fn round_trip_preserves_estimates() {
        let s = sample_synopsis();
        let bytes = encode_synopsis(&s);
        let d = decode_synopsis(&bytes).unwrap();
        for q in [
            "//movie/title",
            "//movie[year>1990]{/title}{/cast/actor/name}",
            "//actor/name[contains(an)]",
            "//series/episode",
        ] {
            let tw_s = parse_twig(q, s.terms()).unwrap();
            let tw_d = parse_twig(q, d.terms()).unwrap();
            let es = estimate(&s, &tw_s);
            let ed = estimate(&d, &tw_d);
            assert!((es - ed).abs() < 1e-9, "{q}: {es} vs {ed}");
        }
    }

    #[test]
    fn encoded_size_tracks_size_model() {
        // The on-disk image should be within a small factor of the
        // footprint model (it stores f64s where the model assumes f32s,
        // plus the interners).
        let s = sample_synopsis();
        let bytes = encode_synopsis(&s);
        let model = s.total_bytes();
        assert!(
            bytes.len() < model * 4 + 64 * 1024,
            "encoded {} vs model {}",
            bytes.len(),
            model
        );
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(decode_synopsis(b"").is_err());
        assert!(decode_synopsis(b"NOPE").is_err());
        assert!(decode_synopsis(b"XCLU\x07").is_err());
        let mut bytes = encode_synopsis(&sample_synopsis());
        bytes.truncate(bytes.len() / 2);
        assert!(decode_synopsis(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_synopsis(&sample_synopsis());
        bytes.push(0);
        assert!(decode_synopsis(&bytes).is_err());
    }

    #[test]
    fn versioned_header_round_trips() {
        let mut s = sample_synopsis();
        assert_eq!(s.version(), 0); // from-scratch builds stamp version 0
        s.set_version(5);
        let d = decode_synopsis(&encode_synopsis(&s)).unwrap();
        assert_eq!(d.version(), 5);
    }

    #[test]
    fn versioned_header_still_rejects_trailing_bytes() {
        let mut s = sample_synopsis();
        s.set_version(3);
        let mut bytes = encode_synopsis(&s);
        bytes.extend_from_slice(&[0xAB, 0xCD]);
        assert!(decode_synopsis(&bytes).is_err());
    }

    #[test]
    fn legacy_format1_decodes_with_version_zero() {
        // A format-1 image is the format-2 image with the fmt byte set to
        // 1 and the 8-byte version field spliced out.
        let bytes = encode_synopsis(&sample_synopsis());
        let mut legacy = bytes[..4].to_vec();
        legacy.push(1);
        legacy.extend_from_slice(&bytes[13..]);
        let d = decode_synopsis(&legacy).unwrap();
        assert_eq!(d.version(), 0);
        assert_eq!(d.num_nodes(), sample_synopsis().num_nodes());
    }

    #[test]
    fn future_formats_are_rejected() {
        let mut bytes = encode_synopsis(&sample_synopsis());
        bytes[4] = 3;
        assert!(decode_synopsis(&bytes).is_err());
    }

    #[test]
    fn all_numeric_backends_round_trip() {
        use xcluster_summaries::NumericKind;
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 30,
            seed: 5,
        });
        for kind in [
            NumericKind::Histogram,
            NumericKind::Wavelet,
            NumericKind::Sample,
        ] {
            let s = reference_synopsis(
                &d.tree,
                &ReferenceConfig {
                    value_paths: Some(d.value_paths.clone()),
                    numeric_kind: kind,
                    ..ReferenceConfig::default()
                },
            );
            let rt = decode_synopsis(&encode_synopsis(&s)).unwrap();
            let q = parse_twig("//movie[year in 1950..1990]", d.tree.terms()).unwrap();
            assert!(
                (estimate(&s, &q) - estimate(&rt, &q)).abs() < 1e-9,
                "{kind:?}"
            );
        }
    }
}
