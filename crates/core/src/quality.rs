//! Per-cluster synopsis health: which clusters spend the byte budget,
//! which ones carry the workload's estimation error, and how well the
//! reachability/probe caches are working — the introspection a
//! rebuild/retune decision needs, ranked worst-first.
//!
//! A [`QualityReport`] joins three sources over the live clusters:
//!
//! * **Bytes and population** — an arena walk in the style of
//!   [`crate::footprint`], but per cluster: paper-model structural
//!   bytes (node header + child edges), value-summary model and heap
//!   bytes by kind, and `count(u)`.
//! * **Workload error attribution** — an [`AttributionReport`] from
//!   [`crate::metrics::evaluate_workload`], when one is available: the
//!   absolute error charged to each cluster, how many queries charged
//!   it, and which summary kinds they probed. The ranking then follows
//!   the attribution order (descending error), so
//!   [`QualityReport::top`] names the same cluster as
//!   [`AttributionReport::top`].
//! * **Cache health** — a [`ReachCacheStats`] snapshot, when serving.
//!
//! The report renders three ways: a CLI table ([`QualityReport::render`],
//! `xcluster quality`), a JSON document ([`QualityReport::to_json`],
//! `GET /debug/synopsis?n=`), and top-offender Prometheus gauges
//! ([`QualityReport::render_metrics`], merged into `/metrics`).

use crate::metrics::AttributionReport;
use crate::plan::ReachCacheStats;
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use xcluster_obs::expose;
use xcluster_summaries::footprint::{SYNOPSIS_EDGE_BYTES, SYNOPSIS_NODE_BYTES};

/// Health row for one live cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterHealth {
    /// The cluster's arena id.
    pub cluster: SynopsisNodeId,
    /// Its element label, resolved for display.
    pub label: String,
    /// Its value type (`none`, `numeric`, `string`, `text`).
    pub vtype: &'static str,
    /// `count(u)`: document elements summarized by this cluster.
    pub population: f64,
    /// Value-summary kind (`histogram`, `pst`, `term_histogram`, …),
    /// if the cluster is summarized.
    pub summary_kind: Option<&'static str>,
    /// Paper-model bytes of the value summary (charged against `Bval`).
    pub summary_bytes: usize,
    /// Resident heap bytes of the value summary.
    pub summary_heap_bytes: usize,
    /// Paper-model structural bytes: node header + child edges.
    pub struct_bytes: usize,
    /// Absolute workload error attributed to this cluster (0 without
    /// attribution).
    pub abs_error: f64,
    /// This cluster's share of the total attributed error (0..1).
    pub error_share: f64,
    /// Workload queries that charged any error here.
    pub queries: usize,
    /// Summary kinds those queries probed (from the attribution).
    pub kinds_probed: Vec<String>,
}

impl ClusterHealth {
    /// Total paper-model bytes this cluster occupies.
    pub fn total_bytes(&self) -> usize {
        self.struct_bytes + self.summary_bytes
    }
}

/// A ranked synopsis health report (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// Per-cluster rows. With attribution: descending `abs_error`,
    /// ties by descending total bytes, then ascending cluster id (so
    /// the first row is [`AttributionReport::top`]'s cluster whenever
    /// any error was charged). Without: descending total bytes, then
    /// ascending cluster id.
    pub clusters: Vec<ClusterHealth>,
    /// Whether workload attribution was joined in.
    pub attributed: bool,
    /// Sum of attributed per-cluster absolute error.
    pub total_abs_error: f64,
    /// Absolute error the attribution could not charge to any cluster.
    pub unattributed_error: f64,
    /// Paper-model structural bytes of the whole synopsis.
    pub structural_bytes: usize,
    /// Paper-model value bytes of the whole synopsis.
    pub value_bytes: usize,
    /// Per-kind footprint totals, keyed by summary kind.
    pub bytes_by_kind: BTreeMap<&'static str, usize>,
    /// Reachability/probe cache counters, when serving.
    pub cache: Option<ReachCacheStats>,
}

impl QualityReport {
    /// Measures bytes and population only (no workload attribution):
    /// rows rank by descending total bytes.
    pub fn measure(s: &Synopsis) -> QualityReport {
        QualityReport::measure_with(s, None)
    }

    /// Measures the synopsis and joins `attribution` when given; the
    /// ranking then follows the attribution (descending error).
    pub fn measure_with(s: &Synopsis, attribution: Option<&AttributionReport>) -> QualityReport {
        let mut by_cluster: BTreeMap<SynopsisNodeId, (f64, usize, Vec<String>)> = BTreeMap::new();
        let mut total_abs_error = 0.0;
        let mut unattributed = 0.0;
        if let Some(attr) = attribution {
            unattributed = attr.unattributed;
            for c in &attr.clusters {
                total_abs_error += c.abs_error;
                by_cluster.insert(c.cluster, (c.abs_error, c.queries, c.summary_kinds.clone()));
            }
        }
        let mut report = QualityReport {
            attributed: attribution.is_some(),
            total_abs_error,
            unattributed_error: unattributed,
            structural_bytes: s.structural_bytes(),
            value_bytes: s.value_bytes(),
            ..QualityReport::default()
        };
        for id in s.live_nodes() {
            let node = s.node(id);
            let (abs_error, queries, kinds_probed) =
                by_cluster.get(&id).cloned().unwrap_or_default();
            let (summary_kind, summary_bytes, summary_heap_bytes) = match &node.vsumm {
                Some(v) => (Some(v.kind_name()), v.size_bytes(), v.heap_bytes()),
                None => (None, 0, 0),
            };
            if let Some(kind) = summary_kind {
                *report.bytes_by_kind.entry(kind).or_default() += summary_bytes;
            }
            report.clusters.push(ClusterHealth {
                cluster: id,
                label: s.labels().resolve(node.label).to_string(),
                vtype: node.vtype.name(),
                population: node.count,
                summary_kind,
                summary_bytes,
                summary_heap_bytes,
                struct_bytes: SYNOPSIS_NODE_BYTES + node.children.len() * SYNOPSIS_EDGE_BYTES,
                abs_error,
                error_share: if total_abs_error > 0.0 {
                    abs_error / total_abs_error
                } else {
                    0.0
                },
                queries,
                kinds_probed,
            });
        }
        report.clusters.sort_by(|a, b| {
            b.abs_error
                .total_cmp(&a.abs_error)
                .then_with(|| b.total_bytes().cmp(&a.total_bytes()))
                .then_with(|| a.cluster.cmp(&b.cluster))
        });
        report
    }

    /// Attaches a reachability/probe cache snapshot.
    pub fn with_cache_stats(mut self, stats: ReachCacheStats) -> QualityReport {
        self.cache = Some(stats);
        self
    }

    /// The worst-ranked cluster (most error, or most bytes without
    /// attribution).
    pub fn top(&self) -> Option<&ClusterHealth> {
        self.clusters.first()
    }

    /// JSON document for `GET /debug/synopsis?n=`: ranking metadata,
    /// totals, and the first `n` rows (`0` = all).
    pub fn to_json(&self, n: usize) -> String {
        let limit = if n == 0 { self.clusters.len() } else { n };
        let mut rows = Vec::new();
        for c in self.clusters.iter().take(limit) {
            let kinds: Vec<String> = c
                .kinds_probed
                .iter()
                .map(|k| format!("\"{}\"", expose_esc(k)))
                .collect();
            rows.push(format!(
                "{{\"cluster\":{},\"label\":\"{}\",\"vtype\":\"{}\",\"population\":{},\
                 \"summary_kind\":{},\"summary_bytes\":{},\"summary_heap_bytes\":{},\
                 \"struct_bytes\":{},\"abs_error\":{},\"error_share\":{},\"queries\":{},\
                 \"kinds_probed\":[{}]}}",
                c.cluster,
                expose_esc(&c.label),
                c.vtype,
                c.population,
                match c.summary_kind {
                    Some(k) => format!("\"{k}\""),
                    None => "null".to_string(),
                },
                c.summary_bytes,
                c.summary_heap_bytes,
                c.struct_bytes,
                c.abs_error,
                c.error_share,
                c.queries,
                kinds.join(",")
            ));
        }
        let by_kind: Vec<String> = self
            .bytes_by_kind
            .iter()
            .map(|(k, b)| format!("\"{k}\":{b}"))
            .collect();
        let cache = match &self.cache {
            Some(c) => format!(
                "{{\"reach_hits\":{},\"reach_misses\":{},\"probe_hits\":{},\"probe_misses\":{},\
                 \"full_entries\":{},\"reach_entries\":{},\"probe_entries\":{}}}",
                c.reach_hits,
                c.reach_misses,
                c.probe_hits,
                c.probe_misses,
                c.full_entries,
                c.reach_entries,
                c.probe_entries
            ),
            None => "null".to_string(),
        };
        format!(
            "{{\"clusters\":{},\"returned\":{},\"attributed\":{},\"total_abs_error\":{},\
             \"unattributed_error\":{},\"structural_bytes\":{},\"value_bytes\":{},\
             \"bytes_by_kind\":{{{}}},\"cache\":{},\"ranked_by\":\"{}\",\"top\":[{}]}}",
            self.clusters.len(),
            rows.len(),
            self.attributed,
            self.total_abs_error,
            self.unattributed_error,
            self.structural_bytes,
            self.value_bytes,
            by_kind.join(","),
            cache,
            if self.attributed {
                "abs_error"
            } else {
                "bytes"
            },
            rows.join(",")
        )
    }

    /// Human-readable table for `xcluster quality` (`n = 0` = all rows).
    pub fn render(&self, n: usize) -> String {
        let limit = if n == 0 { self.clusters.len() } else { n };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "synopsis quality: {} clusters, {} struct B + {} value B, ranked by {}",
            self.clusters.len(),
            self.structural_bytes,
            self.value_bytes,
            if self.attributed {
                "workload error"
            } else {
                "bytes"
            },
        );
        if !self.bytes_by_kind.is_empty() {
            let kinds: Vec<String> = self
                .bytes_by_kind
                .iter()
                .map(|(k, b)| format!("{k} {b} B"))
                .collect();
            let _ = writeln!(out, "value bytes by kind: {}", kinds.join(", "));
        }
        if self.attributed {
            let _ = writeln!(
                out,
                "workload abs error: {:.4} attributed, {:.4} unattributed",
                self.total_abs_error, self.unattributed_error
            );
        }
        if let Some(c) = &self.cache {
            let _ = writeln!(
                out,
                "caches: reach {}/{} hits, probe {}/{} hits, {} entries",
                c.reach_hits,
                c.reach_hits + c.reach_misses,
                c.probe_hits,
                c.probe_hits + c.probe_misses,
                c.full_entries + c.reach_entries + c.probe_entries,
            );
        }
        let _ = writeln!(
            out,
            "{:>8}  {:<16} {:<8} {:>10} {:<14} {:>9} {:>9} {:>12} {:>7} {:>7}",
            "cluster",
            "label",
            "vtype",
            "population",
            "summary",
            "sum B",
            "struct B",
            "abs error",
            "share",
            "queries"
        );
        for c in self.clusters.iter().take(limit) {
            let _ = writeln!(
                out,
                "{:>8}  {:<16} {:<8} {:>10.1} {:<14} {:>9} {:>9} {:>12.4} {:>6.1}% {:>7}",
                c.cluster,
                truncated(&c.label, 16),
                c.vtype,
                c.population,
                c.summary_kind.unwrap_or("-"),
                c.summary_bytes,
                c.struct_bytes,
                c.abs_error,
                c.error_share * 100.0,
                c.queries
            );
        }
        if self.clusters.len() > limit {
            let _ = writeln!(out, "... {} more clusters", self.clusters.len() - limit);
        }
        out
    }

    /// Appends top-offender gauges to a Prometheus exposition: the
    /// first `n` ranked clusters' error and byte gauges, plus report
    /// totals. Cluster ids and labels ride as labels; label values are
    /// escaped by the exposition renderer.
    pub fn render_metrics(&self, out: &mut String, namespace: &str, n: usize) {
        let top: Vec<&ClusterHealth> = self.clusters.iter().take(n).collect();
        let ids: Vec<String> = top.iter().map(|c| c.cluster.to_string()).collect();
        let mut bytes_samples: Vec<(Vec<(&str, &str)>, f64)> = Vec::new();
        let mut error_samples: Vec<(Vec<(&str, &str)>, f64)> = Vec::new();
        for (i, c) in top.iter().enumerate() {
            let labels = vec![
                ("cluster", ids[i].as_str()),
                ("label", c.label.as_str()),
                ("kind", c.summary_kind.unwrap_or("none")),
            ];
            bytes_samples.push((labels.clone(), c.total_bytes() as f64));
            if self.attributed {
                error_samples.push((labels, c.abs_error));
            }
        }
        fn slices<'a>(
            v: &'a [(Vec<(&'a str, &'a str)>, f64)],
        ) -> Vec<(&'a [(&'a str, &'a str)], f64)> {
            v.iter().map(|(l, val)| (l.as_slice(), *val)).collect()
        }
        expose::render_labeled_family(
            out,
            &format!("{namespace}_quality_cluster_bytes"),
            "gauge",
            "Paper-model bytes (structure + summary) of the worst-ranked clusters.",
            &slices(&bytes_samples),
        );
        if self.attributed {
            expose::render_labeled_family(
                out,
                &format!("{namespace}_quality_cluster_error"),
                "gauge",
                "Absolute workload error attributed to the worst-ranked clusters.",
                &slices(&error_samples),
            );
            expose::render_labeled_family(
                out,
                &format!("{namespace}_quality_unattributed_error"),
                "gauge",
                "Absolute workload error not charged to any cluster.",
                &[(&[], self.unattributed_error)],
            );
        }
        expose::render_labeled_family(
            out,
            &format!("{namespace}_quality_clusters"),
            "gauge",
            "Live clusters in the loaded synopsis.",
            &[(&[], self.clusters.len() as f64)],
        );
    }
}

/// JSON string escaping (shared with the obs JSON export).
fn expose_esc(s: &str) -> String {
    xcluster_obs::export::esc(s)
}

/// Truncates a label for the fixed-width table.
fn truncated(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n - 1)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_synopsis, BuildConfig};
    use crate::metrics::{evaluate_workload, EvalOptions};
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::eval::EvalIndex;
    use xcluster_query::workload::{self, Workload, WorkloadConfig};
    use xcluster_xml::parse;

    fn sample() -> (xcluster_xml::XmlTree, Synopsis) {
        let doc = parse(
            "<bib><paper><year>1998</year><title>Histograms</title>\
             <abstract>histograms approximate value distributions compactly</abstract></paper>\
             <paper><year>2004</year><title>Sketches</title>\
             <abstract>sketches summarize streams in sublinear space</abstract></paper>\
             <paper><year>2010</year><title>Synopses</title>\
             <abstract>xml synopses estimate twig selectivity</abstract></paper></bib>",
        )
        .unwrap();
        let reference = reference_synopsis(&doc, &ReferenceConfig::default());
        let s = build_synopsis(
            reference,
            &BuildConfig {
                b_str: 512,
                b_val: 512,
                ..BuildConfig::default()
            },
        );
        (doc, s)
    }

    fn sample_workload(doc: &xcluster_xml::XmlTree) -> Workload {
        let idx = EvalIndex::build(doc);
        workload::generate_positive(
            doc,
            &idx,
            &WorkloadConfig {
                num_queries: 40,
                seed: 5,
                ..WorkloadConfig::default()
            },
        )
    }

    #[test]
    fn measure_covers_every_live_cluster() {
        let (_, s) = sample();
        let q = QualityReport::measure(&s);
        assert_eq!(q.clusters.len(), s.num_nodes());
        assert!(!q.attributed);
        assert_eq!(q.structural_bytes, s.structural_bytes());
        assert_eq!(q.value_bytes, s.value_bytes());
        // Per-cluster bytes partition the totals.
        let struct_sum: usize = q.clusters.iter().map(|c| c.struct_bytes).sum();
        let value_sum: usize = q.clusters.iter().map(|c| c.summary_bytes).sum();
        assert_eq!(struct_sum, s.structural_bytes());
        assert_eq!(value_sum, s.value_bytes());
        assert_eq!(q.bytes_by_kind.values().sum::<usize>(), value_sum);
        // Without attribution the ranking is by bytes.
        for w in q.clusters.windows(2) {
            assert!(w[0].total_bytes() >= w[1].total_bytes());
        }
    }

    #[test]
    fn attribution_ranks_the_same_top_cluster() {
        let (doc, s) = sample();
        let w = sample_workload(&doc);
        let eval = evaluate_workload(&s, &w, &EvalOptions::default().with_attribution(true));
        let attr = eval.attribution.expect("attribution requested");
        let q = QualityReport::measure_with(&s, Some(&attr));
        assert!(q.attributed);
        if let Some(top) = attr.top() {
            assert_eq!(q.top().unwrap().cluster, top.cluster, "rankings agree");
            assert!(q.top().unwrap().abs_error > 0.0);
            assert!(
                (q.top().unwrap().error_share - top.abs_error / q.total_abs_error).abs() < 1e-12
            );
        }
        // Attribution joins onto measured rows, never invents clusters.
        assert_eq!(q.clusters.len(), s.num_nodes());
    }

    #[test]
    fn json_and_table_render_and_limit() {
        let (doc, s) = sample();
        let w = sample_workload(&doc);
        let eval = evaluate_workload(&s, &w, &EvalOptions::default().with_attribution(true));
        let q = QualityReport::measure_with(&s, eval.attribution.as_ref());
        let v = xcluster_obs::json::parse(&q.to_json(3)).expect("valid JSON");
        assert_eq!(
            v.get("clusters").and_then(|x| x.as_f64()).unwrap() as usize,
            q.clusters.len()
        );
        let top = v.get("top").unwrap().idx(0).unwrap();
        assert_eq!(
            top.get("cluster").and_then(|x| x.as_f64()).unwrap() as usize,
            q.top().unwrap().cluster
        );
        let returned = v.get("returned").and_then(|x| x.as_f64()).unwrap() as usize;
        assert!(returned <= 3);
        let table = q.render(2);
        assert!(table.contains("ranked by workload error"), "{table}");
        assert!(table.contains("more clusters"), "{table}");
    }

    #[test]
    fn metrics_render_and_scrape_round_trip() {
        let (doc, s) = sample();
        let w = sample_workload(&doc);
        let eval = evaluate_workload(&s, &w, &EvalOptions::default().with_attribution(true));
        let q = QualityReport::measure_with(&s, eval.attribution.as_ref());
        let mut out = String::new();
        q.render_metrics(&mut out, "xcluster", 5);
        let exp = expose::parse(&out).expect("strict scrape");
        let top = q.top().unwrap();
        let id = top.cluster.to_string();
        let labels = [
            ("cluster", id.as_str()),
            ("label", top.label.as_str()),
            ("kind", top.summary_kind.unwrap_or("none")),
        ];
        assert_eq!(
            exp.labeled_value("xcluster_quality_cluster_bytes", &labels),
            Some(top.total_bytes() as f64)
        );
        if q.attributed && top.abs_error > 0.0 {
            assert_eq!(
                exp.labeled_value("xcluster_quality_cluster_error", &labels),
                Some(top.abs_error)
            );
        }
        assert_eq!(
            exp.value("xcluster_quality_clusters"),
            Some(q.clusters.len() as f64)
        );
    }
}
