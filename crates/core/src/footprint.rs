//! Resident-memory accounting for a loaded [`Synopsis`].
//!
//! The paper's budgets (`Bstr`, `Bval`) are expressed in *model* bytes —
//! a compact on-disk encoding where a bucket costs 8 bytes and a PST
//! node 9 (see `xcluster_summaries::footprint`). A serving process cares
//! about a different number: how many bytes of heap the synopsis
//! actually occupies, including arena tombstones, `Vec` slack capacity,
//! and interner copies. [`MemoryFootprint::measure`] walks the arena
//! once and attributes resident bytes across clusters, edges, and each
//! value-summary kind; [`MemoryFootprint::register`] publishes the
//! breakdown as `footprint.*` gauges so `/metrics` and
//! `/synopsis/stats` can expose it.
//!
//! All numbers are computed from allocated capacities (`Vec::capacity`,
//! `HashMap::capacity`), not live lengths — slack is real memory. They
//! are a faithful model of the Rust layout, not an allocator probe:
//! per-allocation malloc headers are not counted.

use crate::synopsis::{Synopsis, SynopsisNode};
use std::collections::BTreeMap;
use xcluster_obs::Registry;

/// Per-summary-kind resident accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindFootprint {
    /// Number of live summaries of this kind.
    pub count: usize,
    /// Resident heap bytes across those summaries.
    pub heap_bytes: usize,
    /// Model (on-disk encoding) bytes across those summaries.
    pub model_bytes: usize,
}

/// Resident-memory attribution for one synopsis.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemoryFootprint {
    /// Arena slots, including tombstones.
    pub arena_nodes: usize,
    /// Live (non-tombstone) cluster nodes.
    pub live_nodes: usize,
    /// Bytes of the node arena itself (capacity × node struct size).
    /// Tombstones and slack capacity are included — they are resident.
    pub cluster_bytes: usize,
    /// Bytes of every node's child-edge and parent-id vectors.
    pub edge_bytes: usize,
    /// Per-kind summary accounting, keyed by
    /// `ValueSummary::kind_name()` (`histogram`, `pst`,
    /// `term_histogram`, `wavelet`, `sample`).
    pub summaries: BTreeMap<&'static str, KindFootprint>,
    /// Bytes of the label + term interners (string payloads and maps).
    pub interner_bytes: usize,
    /// The paper-model structural bytes (`|S|_str`), for comparison.
    pub model_structural_bytes: usize,
    /// The paper-model value bytes (`|S|_val`), for comparison.
    pub model_value_bytes: usize,
}

impl MemoryFootprint {
    /// Walks the synopsis once and attributes its resident heap bytes.
    pub fn measure(s: &Synopsis) -> MemoryFootprint {
        let mut fp = MemoryFootprint {
            arena_nodes: s.arena_len(),
            cluster_bytes: s.arena_capacity() * std::mem::size_of::<SynopsisNode>(),
            interner_bytes: s.labels().heap_bytes() + s.terms().heap_bytes(),
            model_structural_bytes: s.structural_bytes(),
            model_value_bytes: s.value_bytes(),
            ..MemoryFootprint::default()
        };
        for id in 0..s.arena_len() {
            let node = s.node(id);
            fp.edge_bytes += node.children.capacity()
                * std::mem::size_of::<(crate::synopsis::SynopsisNodeId, f64)>()
                + node.parents.capacity() * std::mem::size_of::<crate::synopsis::SynopsisNodeId>();
            if node.alive {
                fp.live_nodes += 1;
            }
            // Tombstoned nodes keep their summaries allocated until the
            // arena is compacted — count them where they live.
            if let Some(v) = &node.vsumm {
                let k = fp.summaries.entry(v.kind_name()).or_default();
                k.count += 1;
                k.heap_bytes += v.heap_bytes();
                k.model_bytes += v.size_bytes();
            }
        }
        fp
    }

    /// Resident heap bytes across all summary kinds.
    pub fn summary_bytes(&self) -> usize {
        self.summaries.values().map(|k| k.heap_bytes).sum()
    }

    /// Total attributed resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.cluster_bytes + self.edge_bytes + self.summary_bytes() + self.interner_bytes
    }

    /// Total paper-model bytes (`|S|_str + |S|_val`).
    pub fn model_bytes(&self) -> usize {
        self.model_structural_bytes + self.model_value_bytes
    }

    /// Publishes the breakdown as `footprint.*` gauges in `r`.
    pub fn register_into(&self, r: &Registry) {
        let g = |name: &str, v: usize| r.gauge(name).set(v as i64);
        g("footprint.arena_nodes", self.arena_nodes);
        g("footprint.live_nodes", self.live_nodes);
        g("footprint.cluster_bytes", self.cluster_bytes);
        g("footprint.edge_bytes", self.edge_bytes);
        g("footprint.interner_bytes", self.interner_bytes);
        g("footprint.total_bytes", self.total_bytes());
        g(
            "footprint.model_structural_bytes",
            self.model_structural_bytes,
        );
        g("footprint.model_value_bytes", self.model_value_bytes);
        for (kind, k) in &self.summaries {
            g(&format!("footprint.summary_{kind}_count"), k.count);
            g(&format!("footprint.summary_{kind}_bytes"), k.heap_bytes);
        }
    }

    /// Publishes the breakdown into the global registry.
    pub fn register(&self) {
        self.register_into(xcluster_obs::global());
    }
}

/// Serving-side telemetry buffers (query journal, slow-query ring)
/// accounted next to the synopsis footprint. Unlike
/// [`MemoryFootprint`] these are not measured from a structure — the
/// serving layer reports its own incremental byte counts and this
/// helper publishes them under the same `footprint.*` namespace so
/// `/metrics` and `/synopsis/stats` present one memory story.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingFootprint {
    /// Resident bytes of the wide-event query journal.
    pub journal_bytes: usize,
    /// Resident bytes of the slow-query ring (records + retained traces).
    pub slow_ring_bytes: usize,
}

impl ServingFootprint {
    /// Total attributed serving-telemetry bytes.
    pub fn total_bytes(&self) -> usize {
        self.journal_bytes + self.slow_ring_bytes
    }

    /// Publishes the breakdown as `footprint.*` gauges in `r`.
    pub fn register_into(&self, r: &Registry) {
        r.gauge("footprint.journal_bytes")
            .set(self.journal_bytes as i64);
        r.gauge("footprint.slow_ring_bytes")
            .set(self.slow_ring_bytes as i64);
        r.gauge("footprint.serving_bytes")
            .set(self.total_bytes() as i64);
    }

    /// Publishes the breakdown into the global registry.
    pub fn register(&self) {
        self.register_into(xcluster_obs::global());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_synopsis, BuildConfig};
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_xml::parse;

    fn sample_synopsis() -> Synopsis {
        let doc = parse(
            "<bib><paper><year>1998</year><title>Histograms</title>\
             <abstract>histograms approximate value distributions compactly</abstract></paper>\
             <paper><year>2004</year><title>Sketches</title>\
             <abstract>sketches summarize streams in sublinear space</abstract></paper></bib>",
        )
        .unwrap();
        let reference = reference_synopsis(&doc, &ReferenceConfig::default());
        build_synopsis(
            reference,
            &BuildConfig {
                b_str: 512,
                b_val: 1024,
                ..BuildConfig::default()
            },
        )
    }

    #[test]
    fn measure_attributes_all_components() {
        let s = sample_synopsis();
        let fp = MemoryFootprint::measure(&s);
        assert_eq!(fp.arena_nodes, s.arena_len());
        assert_eq!(fp.live_nodes, s.num_nodes());
        assert!(fp.cluster_bytes >= fp.arena_nodes * std::mem::size_of::<SynopsisNode>());
        assert!(fp.edge_bytes > 0, "sample doc has edges");
        assert!(fp.interner_bytes > 0, "labels are interned");
        assert_eq!(fp.model_structural_bytes, s.structural_bytes());
        assert_eq!(fp.model_value_bytes, s.value_bytes());
        assert_eq!(
            fp.total_bytes(),
            fp.cluster_bytes + fp.edge_bytes + fp.summary_bytes() + fp.interner_bytes
        );
    }

    #[test]
    fn measure_sees_summary_kinds() {
        let s = sample_synopsis();
        let fp = MemoryFootprint::measure(&s);
        // year → histogram, title → pst, abstract → term histogram.
        for kind in ["histogram", "pst", "term_histogram"] {
            let k = fp.summaries.get(kind).copied().unwrap_or_default();
            assert!(k.count > 0, "expected a {kind} summary");
            assert!(k.heap_bytes > 0, "{kind} summaries occupy heap");
            assert!(k.model_bytes > 0, "{kind} summaries have model bytes");
        }
        // Resident bytes exceed the compact on-disk model.
        assert!(fp.summary_bytes() >= fp.model_value_bytes / 2);
    }

    #[test]
    fn serving_footprint_registers_gauges() {
        let fp = ServingFootprint {
            journal_bytes: 1024,
            slow_ring_bytes: 512,
        };
        assert_eq!(fp.total_bytes(), 1536);
        let r = Registry::default();
        fp.register_into(&r);
        let snap = r.snapshot();
        let get = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        assert_eq!(get("footprint.journal_bytes"), 1024);
        assert_eq!(get("footprint.slow_ring_bytes"), 512);
        assert_eq!(get("footprint.serving_bytes"), 1536);
    }

    #[test]
    fn register_publishes_gauges() {
        let s = sample_synopsis();
        let fp = MemoryFootprint::measure(&s);
        let r = Registry::default();
        fp.register_into(&r);
        let snap = r.snapshot();
        let get = |name: &str| {
            snap.gauges
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        assert_eq!(get("footprint.total_bytes"), fp.total_bytes() as i64);
        assert_eq!(get("footprint.live_nodes"), fp.live_nodes as i64);
        assert_eq!(
            get("footprint.summary_histogram_bytes"),
            fp.summaries["histogram"].heap_bytes as i64
        );
    }
}
