//! The `XClusterBuild` construction algorithm (paper Section 4.3,
//! Figures 5 and 6).
//!
//! Starting from the detailed reference synopsis, the build proceeds in
//! two phases:
//!
//! 1. **Structure-value merge** — node merges reduce the structural
//!    footprint to `Bstr` bytes. Candidates are kept in a bounded pool of
//!    at most `Hm` merges ordered by *marginal loss* Δ(S,S′)/Δbytes; the
//!    pool is drained to `Hl` and then replenished by `build_pool`, which
//!    enumerates merge pairs bottom-up by node *level* (shortest distance
//!    to a leaf): levels `≤ l` first, with `l` advancing to one above the
//!    highest level merged in the previous round (the intuition: parents
//!    merge well once their children have merged).
//! 2. **Value-summary compression** — `hist_cmprs` / `st_cmprs` /
//!    `tv_cmprs` steps reduce the value footprint to `Bval` bytes, again
//!    greedily by marginal loss over a per-summary candidate heap.
//!
//! Engineering notes (see `DESIGN.md`): pool entries are invalidated
//! lazily via node version stamps; candidates for nodes carrying value
//! summaries enter the pool with a cheap structure-only Δ and are refined
//! to the full structure-value Δ when they reach the top of the heap;
//! phase 2 compresses in byte *chunks* rather than `b = 1` micro-steps.
//!
//! Both phases report to the `xcluster-obs` registry under the `build.*`
//! namespace: per-phase wall time, merges applied/rejected, pool refills
//! and candidate counts, lazy-Δ refinements, and bytes freed per value
//! chunk. `xcluster stats` / `xcluster build --stats` print them.
//!
//! With call-path profiling on (`XCLUSTER_PROFILE=1` or
//! `xcluster build --profile`), every stage additionally feeds
//! [`xcluster_obs::profile`]: merge rounds, pool refills, per-group
//! candidate scoring, lazy refinements, and phase-2 chunk evaluation
//! and application each open a profiler frame, so the collapsed-stack
//! export shows where build time goes *inside* the two phase timers —
//! whose inclusive totals the profile reproduces exactly, because
//! [`SpanTimer`] closes its profiler frame with the same duration it
//! records into the histogram.

use crate::delta::{
    evaluate_compression_chunk, evaluate_merge, evaluate_merge_with, ChunkCandidate, MergeCandidate,
};
use crate::merge::apply_merge;
use crate::par;
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::cmp::Ordering;
use std::collections::{BTreeSet, BinaryHeap};
use xcluster_obs::{profile, SpanTimer};
use xcluster_xml::{Symbol, ValueType};

/// A set of `(label, value type)` merge classes — the unit of dirtiness
/// tracked by incremental maintenance (`crate::delta::apply_delta`).
pub type GroupSet = BTreeSet<(Symbol, ValueType)>;

/// Registry handles for the build instrumentation, resolved once per
/// process (updates are relaxed atomics — see `xcluster-obs`).
mod stats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, gauge, histogram, Counter, Gauge, Histogram};

    macro_rules! handles {
        ($($kind:ident $name:ident = $key:literal;)*) => {$(
            pub static $name: LazyLock<Arc<handles!(@ty $kind)>> =
                LazyLock::new(|| $kind($key));
        )*};
        (@ty counter) => { Counter };
        (@ty gauge) => { Gauge };
        (@ty histogram) => { Histogram };
    }

    handles! {
        histogram PHASE1_NS = "build.phase1_ns";
        histogram PHASE2_NS = "build.phase2_ns";
        histogram TOTAL_NS = "build.total_ns";
        histogram CHUNK_BYTES_FREED = "build.chunk_bytes_freed";
        counter MERGES_APPLIED = "build.merges_applied";
        counter MERGES_REJECTED = "build.merges_rejected";
        counter POOL_REFILLS = "build.pool_refills";
        counter POOL_CANDIDATES = "build.pool_candidates";
        counter CANDIDATE_REFINEMENTS = "build.candidate_refinements";
        counter VALUE_CHUNKS = "build.value_chunks";
        counter VALUE_BYTES_FREED = "build.value_bytes_freed";
        gauge FINAL_STRUCT_BYTES = "build.final_struct_bytes";
        gauge FINAL_VALUE_BYTES = "build.final_value_bytes";
        gauge BUILD_THREADS = "build.threads";
    }
}

/// `XClusterBuild` parameters (paper defaults: `Hm = 10000`,
/// `Hl = 5000`; budgets in bytes — the experiments use KB values).
#[derive(Debug, Clone)]
pub struct BuildConfig {
    /// Structural storage budget `Bstr` in bytes.
    pub b_str: usize,
    /// Value-summary storage budget `Bval` in bytes.
    pub b_val: usize,
    /// Maximum candidate-pool size `Hm`.
    pub h_m: usize,
    /// Pool replenishment threshold `Hl`.
    pub h_l: usize,
    /// Minimum bytes per value-compression chunk (phase 2 granularity).
    pub min_value_chunk: usize,
    /// Worker threads for candidate scoring (`0` = available
    /// parallelism). The thread count never changes the result: parallel
    /// builds are byte-identical to `threads = 1` (see [`crate::par`]
    /// and `tests/parallel.rs`).
    pub threads: usize,
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig {
            b_str: 10 * 1024,
            b_val: 150 * 1024,
            h_m: 10_000,
            h_l: 5_000,
            min_value_chunk: 128,
            threads: 1,
        }
    }
}

/// A structurally invalid [`BuildConfig`] (the byte budgets `b_str` /
/// `b_val` may legitimately be zero — that requests the smallest
/// synopsis — but the pool and chunk parameters must be usable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildConfigError {
    /// `h_m == 0`: the candidate pool could never hold a merge.
    ZeroPool,
    /// `h_l > h_m`: the drain threshold exceeds the pool capacity, so
    /// the pool would refill before ever applying a merge.
    DrainAboveCapacity {
        /// The configured `h_l`.
        h_l: usize,
        /// The configured `h_m`.
        h_m: usize,
    },
    /// `min_value_chunk == 0`: phase 2 would compress in empty steps
    /// and never converge toward the value budget.
    ZeroValueChunk,
}

impl std::fmt::Display for BuildConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildConfigError::ZeroPool => {
                write!(f, "candidate pool capacity h_m must be nonzero")
            }
            BuildConfigError::DrainAboveCapacity { h_l, h_m } => write!(
                f,
                "pool drain threshold h_l ({h_l}) exceeds pool capacity h_m ({h_m})"
            ),
            BuildConfigError::ZeroValueChunk => {
                write!(
                    f,
                    "value-compression chunk size min_value_chunk must be nonzero"
                )
            }
        }
    }
}

impl std::error::Error for BuildConfigError {}

impl BuildConfig {
    /// Checks the pool and chunk parameters (byte budgets are
    /// unconstrained: zero budgets request the smallest synopsis).
    pub fn validate(&self) -> Result<(), BuildConfigError> {
        if self.h_m == 0 {
            return Err(BuildConfigError::ZeroPool);
        }
        if self.h_l > self.h_m {
            return Err(BuildConfigError::DrainAboveCapacity {
                h_l: self.h_l,
                h_m: self.h_m,
            });
        }
        if self.min_value_chunk == 0 {
            return Err(BuildConfigError::ZeroValueChunk);
        }
        Ok(())
    }
}

/// Runs both phases of `XClusterBuild` on a (reference) synopsis.
///
/// Panics on an invalid [`BuildConfig`]; use [`try_build_synopsis`]
/// to surface the error instead.
pub fn build_synopsis(s: Synopsis, cfg: &BuildConfig) -> Synopsis {
    try_build_synopsis(s, cfg).expect("invalid BuildConfig")
}

/// [`build_synopsis`] with upfront [`BuildConfig::validate`] checking.
pub fn try_build_synopsis(
    mut s: Synopsis,
    cfg: &BuildConfig,
) -> Result<Synopsis, BuildConfigError> {
    cfg.validate()?;
    let _total = SpanTimer::new("build.total", &stats::TOTAL_NS);
    stats::BUILD_THREADS.set(par::resolve_threads(cfg.threads) as i64);
    {
        let _p1 = SpanTimer::new("build.phase1", &stats::PHASE1_NS);
        structure_value_merge(&mut s, cfg);
    }
    {
        let _p2 = SpanTimer::new("build.phase2", &stats::PHASE2_NS);
        value_compression(&mut s, cfg);
    }
    stats::FINAL_STRUCT_BYTES.set(s.structural_bytes() as i64);
    stats::FINAL_VALUE_BYTES.set(s.value_bytes() as i64);
    xcluster_obs::debug!(
        "build",
        "done: {} structural bytes, {} value bytes, {} merges",
        s.structural_bytes(),
        s.value_bytes(),
        stats::MERGES_APPLIED.get()
    );
    debug_assert_eq!(s.check_consistency(), Ok(()));
    Ok(s)
}

// ---------------------------------------------------------------------
// Phase 1: structure-value merge.
// ---------------------------------------------------------------------

/// A pool entry: a candidate ordered by marginal loss (min-heap). `exact`
/// is false while the entry carries the cheap structure-only Δ.
struct PoolEntry {
    cand: MergeCandidate,
    exact: bool,
}

impl PartialEq for PoolEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for PoolEntry {}
impl PartialOrd for PoolEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PoolEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want minimum marginal
        // loss. Equal losses tie-break on the (u, v) cluster-id pair
        // (smallest pair pops first) and then on exactness (refined
        // entries pop before cheap ones), so the pop order never depends
        // on heap insertion order — a prerequisite for byte-identical
        // parallel builds.
        other
            .cand
            .marginal_loss()
            .total_cmp(&self.cand.marginal_loss())
            .then_with(|| (other.cand.u, other.cand.v).cmp(&(self.cand.u, self.cand.v)))
            .then_with(|| self.exact.cmp(&other.exact))
    }
}

/// Phase 1 (Figure 5, lines 2–10).
pub fn structure_value_merge(s: &mut Synopsis, cfg: &BuildConfig) {
    structure_value_merge_filtered(s, cfg, None);
}

/// [`structure_value_merge`] restricted to the given `(label, type)`
/// groups: only pairs within a listed group are considered. Used by
/// incremental maintenance to re-run the merge heap over the regions a
/// delta dirtied instead of the whole synopsis. The restricted pass can
/// stop above `Bstr` when the clean regions hold the remaining bytes —
/// callers fall back to the full pass in that case.
pub fn structure_value_merge_groups(s: &mut Synopsis, cfg: &BuildConfig, groups: &GroupSet) {
    structure_value_merge_filtered(s, cfg, Some(groups));
}

fn structure_value_merge_filtered(s: &mut Synopsis, cfg: &BuildConfig, filter: Option<&GroupSet>) {
    let mut l = 1u32;
    loop {
        let _round = profile::span("merge_round");
        if s.structural_bytes() <= cfg.b_str {
            return;
        }
        let levels = clamped_levels(s);
        let max_level = s.live_nodes().map(|i| levels[i]).max().unwrap_or(0);
        let mut pool = {
            let _refill = profile::span("pool_refill");
            build_pool(s, cfg.h_m, l, &levels, cfg.threads, filter)
        };
        stats::POOL_REFILLS.inc();
        stats::POOL_CANDIDATES.add(pool.len() as u64);
        if pool.is_empty() {
            if l > max_level {
                return; // nothing left to merge at any level
            }
            l = max_level.min(l.saturating_mul(2)).max(l + 1);
            continue;
        }
        xcluster_obs::trace!(
            "build",
            "pool refill at level {l}: {} candidates, {} structural bytes over budget",
            pool.len(),
            s.structural_bytes().saturating_sub(cfg.b_str)
        );
        // Drain the pool to Hl (or fully, if it started below Hl).
        let _drain = profile::span("pool_drain");
        let floor = if pool.len() > cfg.h_l { cfg.h_l } else { 0 };
        let mut max_new_level = 0u32;
        let mut merged_any = false;
        while s.structural_bytes() > cfg.b_str && pool.len() > floor {
            let Some(entry) = pool.pop() else { break };
            let MergeCandidate { u, v, versions, .. } = entry.cand;
            if !s.node(u).alive || !s.node(v).alive {
                stats::MERGES_REJECTED.inc();
                continue; // stale: endpoint already merged away
            }
            let fresh = s.node(u).version == versions.0 && s.node(v).version == versions.1;
            if !fresh || !entry.exact {
                // Re-evaluate (and upgrade to the exact structure-value Δ)
                // and give it another chance in the heap.
                let _refine = profile::span("refine_candidate");
                stats::CANDIDATE_REFINEMENTS.inc();
                pool.push(PoolEntry {
                    cand: evaluate_merge(s, u, v),
                    exact: true,
                });
                continue;
            }
            let lu = levels.get(u).copied().unwrap_or(0);
            let lv = levels.get(v).copied().unwrap_or(0);
            apply_merge(s, u, v);
            stats::MERGES_APPLIED.inc();
            merged_any = true;
            max_new_level = max_new_level.max(lu.max(lv));
        }
        drop(_drain);
        if s.structural_bytes() <= cfg.b_str {
            return;
        }
        // Replenish (Figure 5, lines 8–9): raise the level to one above
        // the highest level touched this round.
        if merged_any {
            l = (max_new_level + 1).max(l);
        } else {
            if l > max_level {
                return;
            }
            l += 1;
        }
    }
}

/// Levels with cycle nodes clamped to (max finite level + 1) so they
/// become mergeable in the last rounds instead of never.
fn clamped_levels(s: &Synopsis) -> Vec<u32> {
    let mut levels = s.levels();
    let max_finite = levels
        .iter()
        .copied()
        .filter(|&l| l != u32::MAX)
        .max()
        .unwrap_or(0);
    for l in &mut levels {
        if *l == u32::MAX {
            *l = max_finite + 1;
        }
    }
    levels
}

/// `build_pool` (Figure 6): all label/type-compatible pairs with both
/// levels `≤ l`, scored and capped at the `h_m` best by marginal loss.
///
/// Pairs where either side carries a value summary enter with the cheap
/// structure-only Δ (refined lazily on pop); purely structural pairs are
/// exact immediately.
///
/// Scoring fans out over `threads` workers partitioned by `(label,
/// type)` group — groups are independent scoring units, and
/// [`par::chunked_map`] concatenates per-chunk results in group order,
/// so the entry vector (and everything downstream: the sort, the
/// truncation, the heap) is identical to the sequential build.
fn build_pool(
    s: &Synopsis,
    h_m: usize,
    l: u32,
    levels: &[u32],
    threads: usize,
    filter: Option<&GroupSet>,
) -> BinaryHeap<PoolEntry> {
    // `nodes_by_label_type` is a BTreeMap, so the group order is
    // deterministic (PR 2) — the partition axis for the workers.
    let groups: Vec<Vec<SynopsisNodeId>> = s
        .nodes_by_label_type()
        .into_iter()
        .filter(|(key, _)| filter.is_none_or(|f| f.contains(key)))
        .map(|(_, ids)| ids)
        .collect();
    let mut entries: Vec<PoolEntry> =
        par::chunked_map(&groups, threads, |ids| score_group(s, ids, h_m, l, levels))
            .into_iter()
            .flatten()
            .collect();
    // Keep the h_m best (Figure 6, lines 6–8: evict maximal marginal loss).
    if entries.len() > h_m {
        // `Ord` is reversed for the min-heap (greatest = smallest loss),
        // so descending heap order = ascending marginal loss, with the
        // deterministic cluster-id tie-break at the truncation boundary.
        entries.sort_by(|a, b| b.cmp(a));
        entries.truncate(h_m);
    }
    entries.into_iter().collect()
}

/// Scores every merge pair within one `(label, type)` group — a pure
/// function of the shared synopsis, safe to run on any worker.
fn score_group(
    s: &Synopsis,
    ids: &[SynopsisNodeId],
    h_m: usize,
    l: u32,
    levels: &[u32],
) -> Vec<PoolEntry> {
    // One profiler frame per scored group. On worker threads the frame
    // roots its own per-thread stack (standard per-thread flamegraph
    // semantics); with `threads = 1` it nests under `pool_refill`.
    let _score = profile::span("score_group");
    // Exhaustive pairing is quadratic per label group; reference synopses
    // can hold thousands of same-label context clusters. Large groups are
    // sorted by a merge-affinity key (primary parent, then extent size:
    // nodes sharing a parent save an edge and tend to have similar
    // centroids) and paired within a sliding window — a documented bound
    // on Figure 6, in the same spirit as the paper's own Hm/level caps.
    const WINDOW: usize = 16;
    let mut eligible: Vec<SynopsisNodeId> =
        ids.iter().copied().filter(|&i| levels[i] <= l).collect();
    eligible.sort_by(|&a, &b| {
        let ka = (s.node(a).parents.first().copied(), s.node(a).count as u64);
        let kb = (s.node(b).parents.first().copied(), s.node(b).count as u64);
        ka.cmp(&kb)
    });
    let mut entries = Vec::new();
    for (i, &u) in eligible.iter().enumerate() {
        let window_end = if eligible.len() * (eligible.len() - 1) / 2 <= h_m {
            eligible.len()
        } else {
            (i + 1 + WINDOW).min(eligible.len())
        };
        for &v in &eligible[i + 1..window_end] {
            let has_values = s.node(u).vsumm.is_some() || s.node(v).vsumm.is_some();
            entries.push(PoolEntry {
                cand: evaluate_merge_with(s, u, v, !has_values),
                exact: !has_values,
            });
        }
    }
    entries
}

// ---------------------------------------------------------------------
// Phase 2: value-summary compression.
// ---------------------------------------------------------------------

struct ValueEntry(ChunkCandidate);

impl PartialEq for ValueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for ValueEntry {}
impl PartialOrd for ValueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ValueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed min-heap, with the same insertion-order-independent
        // tie-break discipline as `PoolEntry`: equal losses pop in
        // ascending cluster-id order.
        other
            .0
            .marginal_loss()
            .total_cmp(&self.0.marginal_loss())
            .then_with(|| other.0.node.cmp(&self.0.node))
    }
}

/// Phase 2 (Figure 5, lines 11–18).
///
/// The initial chunk evaluation (one summary-compression candidate per
/// live node carrying values) fans out over `cfg.threads` workers; the
/// drain loop itself stays sequential — each applied chunk invalidates
/// the node it touched, so the loop is inherently serial.
pub fn value_compression(s: &mut Synopsis, cfg: &BuildConfig) {
    value_compression_filtered(s, cfg, None);
}

/// [`value_compression`] restricted to summarized nodes in the given
/// `(label, type)` groups — the phase-2 counterpart of
/// [`structure_value_merge_groups`]. As with phase 1, the restricted pass
/// may stop above `Bval` when the clean summaries hold the bytes; callers
/// fall back to the full pass.
pub fn value_compression_groups(s: &mut Synopsis, cfg: &BuildConfig, groups: &GroupSet) {
    value_compression_filtered(s, cfg, Some(groups));
}

fn value_compression_filtered(s: &mut Synopsis, cfg: &BuildConfig, filter: Option<&GroupSet>) {
    let nodes: Vec<SynopsisNodeId> = s
        .live_nodes()
        .filter(|&id| {
            let n = s.node(id);
            filter.is_none_or(|f| f.contains(&(n.label, n.vtype)))
        })
        .collect();
    let heap_init = profile::span("chunk_heap_init");
    let mut heap: BinaryHeap<ValueEntry> = par::chunked_map(&nodes, cfg.threads, |&id| {
        evaluate_compression_chunk(s, id, cfg.min_value_chunk)
    })
    .into_iter()
    .flatten()
    .map(ValueEntry)
    .collect();
    drop(heap_init);
    while s.value_bytes() > cfg.b_val {
        let _chunk = profile::span("value_chunk");
        let Some(ValueEntry(cand)) = heap.pop() else {
            break; // every summary is already minimal
        };
        let node = cand.node;
        if !s.node(node).alive {
            continue;
        }
        if s.node(node).version != cand.version {
            if let Some(fresh) = evaluate_compression_chunk(s, node, cfg.min_value_chunk) {
                heap.push(ValueEntry(fresh));
            }
            continue;
        }
        let bytes_before = s.node(node).vsumm.as_ref().map_or(0, |v| v.size_bytes());
        s.node_mut(node).vsumm = Some(cand.compressed);
        let freed =
            bytes_before.saturating_sub(s.node(node).vsumm.as_ref().map_or(0, |v| v.size_bytes()));
        stats::VALUE_CHUNKS.inc();
        stats::VALUE_BYTES_FREED.add(freed as u64);
        stats::CHUNK_BYTES_FREED.record(freed as u64);
        if let Some(next) = evaluate_compression_chunk(s, node, cfg.min_value_chunk) {
            heap.push(ValueEntry(next));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_xml::parse;

    fn imdb_small() -> Synopsis {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 70,
            seed: 7,
        });
        reference_synopsis(&d.tree, &ReferenceConfig::default())
    }

    #[test]
    fn phase1_reaches_structural_budget() {
        let mut s = imdb_small();
        let before = s.structural_bytes();
        let cfg = BuildConfig {
            b_str: before / 4,
            ..BuildConfig::default()
        };
        structure_value_merge(&mut s, &cfg);
        assert!(
            s.structural_bytes() <= cfg.b_str,
            "{} > {}",
            s.structural_bytes(),
            cfg.b_str
        );
        s.check_consistency().unwrap();
    }

    #[test]
    fn zero_budget_collapses_to_tag_partition() {
        let mut s = imdb_small();
        let cfg = BuildConfig {
            b_str: 0,
            ..BuildConfig::default()
        };
        structure_value_merge(&mut s, &cfg);
        // Every (label, type) class collapses into one node — the
        // smallest possible structural summary (paper Section 6.2).
        let groups = s.nodes_by_label_type();
        for ((label, _), ids) in groups {
            assert_eq!(
                ids.len(),
                1,
                "label {} not fully merged",
                s.labels().resolve(label)
            );
        }
        s.check_consistency().unwrap();
    }

    #[test]
    fn counts_preserved_by_merging() {
        let mut s = imdb_small();
        let total_before: f64 = s.live_nodes().map(|i| s.node(i).count).sum();
        let cfg = BuildConfig {
            b_str: 0,
            ..BuildConfig::default()
        };
        structure_value_merge(&mut s, &cfg);
        let total_after: f64 = s.live_nodes().map(|i| s.node(i).count).sum();
        assert!((total_before - total_after).abs() < 1e-6);
    }

    /// Incompressible floor of the value summaries: one-bucket
    /// histograms, symbol-only PSTs, all-uniform term histograms.
    fn value_floor(s: &Synopsis) -> usize {
        s.live_nodes()
            .filter_map(|id| s.node(id).vsumm.clone())
            .map(|mut vs| {
                vs.compress_to_bytes(0);
                vs.size_bytes()
            })
            .sum()
    }

    #[test]
    fn phase2_reaches_value_budget() {
        let mut s = imdb_small();
        let before = s.value_bytes();
        assert!(before > 0);
        let floor = value_floor(&s);
        let b_val = floor + (before - floor) / 3;
        let cfg = BuildConfig {
            b_val,
            ..BuildConfig::default()
        };
        value_compression(&mut s, &cfg);
        assert!(
            s.value_bytes() <= cfg.b_val,
            "{} > {}",
            s.value_bytes(),
            cfg.b_val
        );
        assert_eq!(s.num_value_nodes(), imdb_small().num_value_nodes());
    }

    #[test]
    fn phase2_stops_at_the_floor_for_impossible_budgets() {
        let mut s = imdb_small();
        let floor = value_floor(&s);
        let cfg = BuildConfig {
            b_val: 0,
            ..BuildConfig::default()
        };
        value_compression(&mut s, &cfg);
        assert_eq!(s.value_bytes(), floor);
    }

    #[test]
    fn full_build_respects_both_budgets() {
        let s = imdb_small();
        let floor = value_floor(&s);
        let cfg = BuildConfig {
            b_str: s.structural_bytes() / 3,
            b_val: floor + (s.value_bytes() - floor) / 2,
            ..BuildConfig::default()
        };
        let built = build_synopsis(s, &cfg);
        assert!(built.structural_bytes() <= cfg.b_str);
        // Merging fuses summaries (value bytes can shrink or grow before
        // phase 2); phase 2 then compresses within the budget unless the
        // post-merge floor exceeds it.
        let post_floor = value_floor(&built);
        assert!(
            built.value_bytes() <= cfg.b_val.max(post_floor),
            "{} > max({}, {})",
            built.value_bytes(),
            cfg.b_val,
            post_floor
        );
    }

    #[test]
    fn generous_budget_is_a_noop() {
        let s = imdb_small();
        let nodes = s.num_nodes();
        let cfg = BuildConfig {
            b_str: usize::MAX / 2,
            b_val: usize::MAX / 2,
            ..BuildConfig::default()
        };
        let built = build_synopsis(s, &cfg);
        assert_eq!(built.num_nodes(), nodes);
    }

    #[test]
    fn tiny_document_build() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let cfg = BuildConfig {
            b_str: 0,
            b_val: 0,
            ..BuildConfig::default()
        };
        let built = build_synopsis(s, &cfg);
        built.check_consistency().unwrap();
        assert!(built.num_nodes() >= 3); // r, a, x at minimum
    }

    #[test]
    fn recursive_structure_build_terminates() {
        let d = xcluster_datagen::xmark::generate(&xcluster_datagen::xmark::XmarkConfig {
            items: 80,
            persons: 40,
            open_auctions: 30,
            closed_auctions: 20,
            categories: 8,
            seed: 3,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let cfg = BuildConfig {
            b_str: 2 * 1024,
            b_val: 20 * 1024,
            ..BuildConfig::default()
        };
        let built = build_synopsis(s, &cfg);
        built.check_consistency().unwrap();
        assert!(built.structural_bytes() <= cfg.b_str);
    }

    #[test]
    fn config_validation_rejects_zero_pool() {
        let cfg = BuildConfig {
            h_m: 0,
            h_l: 0,
            ..BuildConfig::default()
        };
        assert_eq!(cfg.validate(), Err(BuildConfigError::ZeroPool));
        let t = parse("<r><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        assert!(try_build_synopsis(s, &cfg).is_err());
    }

    #[test]
    fn config_validation_rejects_drain_above_capacity() {
        let cfg = BuildConfig {
            h_m: 100,
            h_l: 101,
            ..BuildConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(BuildConfigError::DrainAboveCapacity { h_l: 101, h_m: 100 })
        );
        // The error message names both offending values.
        let msg = cfg.validate().unwrap_err().to_string();
        assert!(msg.contains("101") && msg.contains("100"), "{msg}");
    }

    #[test]
    fn config_validation_rejects_zero_value_chunk() {
        let cfg = BuildConfig {
            min_value_chunk: 0,
            ..BuildConfig::default()
        };
        assert_eq!(cfg.validate(), Err(BuildConfigError::ZeroValueChunk));
    }

    #[test]
    fn config_validation_accepts_zero_byte_budgets() {
        // Zero byte budgets are a legitimate request for the smallest
        // synopsis (tag partition / value floor), not an error.
        let cfg = BuildConfig {
            b_str: 0,
            b_val: 0,
            ..BuildConfig::default()
        };
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "invalid BuildConfig")]
    fn build_synopsis_panics_on_invalid_config() {
        let t = parse("<r><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        build_synopsis(
            s,
            &BuildConfig {
                h_m: 0,
                h_l: 0,
                ..BuildConfig::default()
            },
        );
    }

    #[test]
    fn build_reports_metrics() {
        let s = imdb_small();
        let cfg = BuildConfig {
            b_str: s.structural_bytes() / 4,
            b_val: s.value_bytes() / 2,
            ..BuildConfig::default()
        };
        let applied_before = stats::MERGES_APPLIED.get();
        let refills_before = stats::POOL_REFILLS.get();
        let _built = build_synopsis(s, &cfg);
        assert!(stats::MERGES_APPLIED.get() > applied_before);
        assert!(stats::POOL_REFILLS.get() > refills_before);
        // The gauge holds the most recent build's sizes; with parallel
        // tests that may be another build's result, so only check it is
        // set to something plausible.
        assert!(stats::FINAL_STRUCT_BYTES.get() > 0);
    }

    #[test]
    fn equal_loss_candidates_pop_in_stable_order() {
        // Regression test for the pool-ordering hazard: entries whose
        // marginal losses are exactly equal used to pop in heap
        // insertion order; the (u, v) secondary key makes the pop order
        // canonical (smallest cluster-id pair first).
        let mk = |u: usize, v: usize| PoolEntry {
            cand: MergeCandidate {
                u,
                v,
                delta: 4.0,
                bytes_saved: 8,
                versions: (0, 0),
            },
            exact: true,
        };
        let orders = [
            [mk(9, 12), mk(3, 7), mk(3, 5)],
            [mk(3, 5), mk(9, 12), mk(3, 7)],
            [mk(3, 7), mk(3, 5), mk(9, 12)],
        ];
        for order in orders {
            let mut heap: BinaryHeap<PoolEntry> = order.into_iter().collect();
            let popped: Vec<(usize, usize)> = std::iter::from_fn(|| heap.pop())
                .map(|e| (e.cand.u, e.cand.v))
                .collect();
            assert_eq!(popped, vec![(3, 5), (3, 7), (9, 12)]);
        }
    }

    #[test]
    fn parallel_build_is_byte_identical_to_sequential() {
        let s = imdb_small();
        let base = BuildConfig {
            b_str: s.structural_bytes() / 3,
            b_val: s.value_bytes() / 2,
            ..BuildConfig::default()
        };
        let seq = build_synopsis(s.clone(), &base);
        let seq_bytes = crate::codec::encode_synopsis(&seq);
        for threads in [2, 4] {
            let par_built = build_synopsis(
                s.clone(),
                &BuildConfig {
                    threads,
                    ..base.clone()
                },
            );
            assert_eq!(
                crate::codec::encode_synopsis(&par_built),
                seq_bytes,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn smaller_budget_gives_smaller_synopsis() {
        let s = imdb_small();
        let big = build_synopsis(
            s.clone(),
            &BuildConfig {
                b_str: s.structural_bytes() / 2,
                b_val: usize::MAX / 2,
                ..BuildConfig::default()
            },
        );
        let small = build_synopsis(
            s,
            &BuildConfig {
                b_str: 1024,
                b_val: usize::MAX / 2,
                ..BuildConfig::default()
            },
        );
        assert!(small.num_nodes() < big.num_nodes());
    }
}
