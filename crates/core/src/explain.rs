//! Estimation tracing — the optimizer-facing "explain" companion to
//! [`crate::estimate`].
//!
//! [`explain`] reports, per *variable* query node, which synopsis
//! clusters the node embeds into and the expected number of elements
//! bound there (ignoring sibling-branch multiplicities — the step
//! cardinalities a cost model consumes), alongside the overall
//! binding-tuple estimate. This is the information a query optimizer
//! reads off the synopsis to choose join orders / anchor plans on the
//! most selective fragment.

use crate::estimate::estimate;
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::HashMap;
use xcluster_query::{Axis, LabelTest, NodeKind, TwigQuery};
use xcluster_summaries::ValuePredicate;
use xcluster_xml::ValueType;

/// Expected bindings of one query node inside one synopsis cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetTrace {
    /// The synopsis cluster.
    pub node: SynopsisNodeId,
    /// Expected number of elements bound here (path flow × predicate
    /// selectivity, ignoring sibling branches).
    pub expected: f64,
    /// The predicate selectivity applied at this cluster (1 when the
    /// query node has no predicate).
    pub selectivity: f64,
}

/// Per-query-node embedding summary.
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// Query node id (in [`TwigQuery`] numbering).
    pub qnode: usize,
    /// Matching clusters with their expected cardinalities, sorted by
    /// descending expectation.
    pub targets: Vec<TargetTrace>,
}

impl NodeTrace {
    /// Total expected elements bound to this query node.
    pub fn expected_total(&self) -> f64 {
        self.targets.iter().map(|t| t.expected).sum()
    }
}

/// The result of [`explain`].
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The overall binding-tuple estimate (identical to
    /// [`crate::estimate`] on the same inputs).
    pub total: f64,
    /// One trace per *variable* query node, in query-node order.
    pub nodes: Vec<NodeTrace>,
}

impl Explanation {
    /// Renders a compact human-readable report.
    pub fn render(&self, s: &Synopsis, q: &TwigQuery) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "estimate: {:.2} binding tuples for {}", self.total, q);
        for t in &self.nodes {
            let label = match &q.node(t.qnode).label {
                LabelTest::Tag(l) => l.clone(),
                LabelTest::Wildcard => "*".to_string(),
            };
            let _ = writeln!(
                out,
                "  q{} ({label}): {:.2} expected over {} cluster(s)",
                t.qnode,
                t.expected_total(),
                t.targets.len()
            );
            for tt in t.targets.iter().take(4) {
                let _ = writeln!(
                    out,
                    "      {}#{}  expected {:.2}  σ={:.4}",
                    s.label_str(tt.node),
                    tt.node,
                    tt.expected,
                    tt.selectivity
                );
            }
        }
        out
    }
}

/// Estimates `query` and reports the per-node embedding cardinalities.
pub fn explain(s: &Synopsis, query: &TwigQuery) -> Explanation {
    let mut populations: HashMap<usize, HashMap<SynopsisNodeId, f64>> = HashMap::new();
    let mut root_pop = HashMap::new();
    root_pop.insert(s.root(), 1.0);
    populations.insert(query.root(), root_pop);
    // Top-down flow in query-node order (parents precede children).
    let order: Vec<usize> = query.node_ids().collect();
    for q in order {
        let node = query.node(q);
        if node.kind != NodeKind::Variable {
            continue;
        }
        let parent = node.parent.expect("non-root query node");
        let Some(parent_pop) = populations.get(&parent).cloned() else {
            continue;
        };
        let mut pop: HashMap<SynopsisNodeId, f64> = HashMap::new();
        for (&sn, &flow) in &parent_pop {
            for (target, expected_per_elem) in reach(s, sn, node.axis, &node.label) {
                let sigma = predicate_selectivity(s, node.predicate.as_ref(), target);
                if sigma > 0.0 {
                    *pop.entry(target).or_insert(0.0) += flow * expected_per_elem * sigma;
                }
            }
        }
        populations.insert(q, pop);
    }
    let mut nodes = Vec::new();
    for q in query.node_ids() {
        if query.node(q).kind != NodeKind::Variable {
            continue;
        }
        let mut targets: Vec<TargetTrace> = populations
            .get(&q)
            .map(|pop| {
                pop.iter()
                    .map(|(&node, &expected)| TargetTrace {
                        node,
                        expected,
                        selectivity: predicate_selectivity(
                            s,
                            query.node(q).predicate.as_ref(),
                            node,
                        ),
                    })
                    .collect()
            })
            .unwrap_or_default();
        targets.sort_by(|a, b| b.expected.total_cmp(&a.expected));
        nodes.push(NodeTrace { qnode: q, targets });
    }
    Explanation {
        total: estimate(s, query),
        nodes,
    }
}

/// Expected elements of each label-matching cluster reached per element
/// of `from` along `axis` (duplicated from the estimator, which keeps its
/// internals private).
fn reach(
    s: &Synopsis,
    from: SynopsisNodeId,
    axis: Axis,
    label: &LabelTest,
) -> Vec<(SynopsisNodeId, f64)> {
    let matches = |t: SynopsisNodeId| match label {
        LabelTest::Wildcard => true,
        LabelTest::Tag(l) => s.label_str(t) == l,
    };
    match axis {
        Axis::Child => s
            .node(from)
            .children
            .iter()
            .filter(|&&(t, _)| matches(t))
            .map(|&(t, c)| (t, c))
            .collect(),
        Axis::Descendant => {
            let mut reach: HashMap<SynopsisNodeId, f64> = HashMap::new();
            let mut frontier: HashMap<SynopsisNodeId, f64> = HashMap::new();
            frontier.insert(from, 1.0);
            for _ in 0..s.max_depth() {
                let mut next: HashMap<SynopsisNodeId, f64> = HashMap::new();
                for (&n, &w) in &frontier {
                    for &(t, c) in &s.node(n).children {
                        *next.entry(t).or_insert(0.0) += w * c;
                    }
                }
                if next.is_empty() {
                    break;
                }
                for (&t, &w) in &next {
                    if matches(t) {
                        *reach.entry(t).or_insert(0.0) += w;
                    }
                }
                frontier = next;
            }
            reach.into_iter().collect()
        }
    }
}

fn predicate_selectivity(
    s: &Synopsis,
    pred: Option<&ValuePredicate>,
    target: SynopsisNodeId,
) -> f64 {
    let Some(pred) = pred else {
        return 1.0;
    };
    let node = s.node(target);
    let type_ok = matches!(
        (pred, node.vtype),
        (ValuePredicate::Range { .. }, ValueType::Numeric)
            | (ValuePredicate::Contains { .. }, ValueType::String)
            | (ValuePredicate::FtContains { .. }, ValueType::Text)
            | (ValuePredicate::SimilarTo { .. }, ValueType::Text)
    );
    if !type_ok {
        return 0.0;
    }
    match &node.vsumm {
        Some(vs) => vs.selectivity(pred),
        None => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::{evaluate, parse_twig, EvalIndex};
    use xcluster_xml::parse;

    #[test]
    fn linear_path_flow_matches_exact_counts() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//a/x", t.terms()).unwrap();
        let ex = explain(&s, &q);
        // q1 = a (2 elements), q2 = x (3 elements).
        assert_eq!(ex.nodes.len(), 2);
        assert!((ex.nodes[0].expected_total() - 2.0).abs() < 1e-9);
        assert!((ex.nodes[1].expected_total() - 3.0).abs() < 1e-9);
        let idx = EvalIndex::build(&t);
        assert!((ex.total - evaluate(&q, &t, &idx)).abs() < 1e-9);
    }

    #[test]
    fn predicate_shrinks_flow() {
        let t = parse("<r><y>10</y><y>20</y><y>30</y><y>40</y></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//y[in 0..25]", t.terms()).unwrap();
        let ex = explain(&s, &q);
        let flow = ex.nodes[0].expected_total();
        assert!(flow > 1.0 && flow < 3.0, "{flow}");
        assert!(ex.nodes[0].targets[0].selectivity < 1.0);
    }

    #[test]
    fn explain_total_equals_estimate() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 60,
            seed: 9,
        });
        let s = reference_synopsis(
            &d.tree,
            &ReferenceConfig {
                value_paths: Some(d.value_paths.clone()),
                ..ReferenceConfig::default()
            },
        );
        for qs in [
            "//movie[year>1990]/title",
            "//movie{/cast/actor/name}{/director}",
            "//series/episode/rating",
        ] {
            let q = parse_twig(qs, d.tree.terms()).unwrap();
            let ex = explain(&s, &q);
            assert!(
                (ex.total - crate::estimate::estimate(&s, &q)).abs() < 1e-9,
                "{qs}"
            );
        }
    }

    #[test]
    fn branches_do_not_inflate_sibling_flow() {
        // q's expected cardinality per node ignores sibling multipliers:
        // adding a {title} leg must not change the actor-name flow.
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 40,
            seed: 3,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let plain = parse_twig("//movie/cast/actor/name", d.tree.terms()).unwrap();
        let twig = parse_twig("//movie{/title}/cast/actor/name", d.tree.terms()).unwrap();
        let flow_plain = explain(&s, &plain).nodes.last().unwrap().expected_total();
        let ex = explain(&s, &twig);
        let name_node = ex
            .nodes
            .iter()
            .find(|n| matches!(twig.node(n.qnode).label, LabelTest::Tag(ref l) if l == "name"))
            .unwrap();
        assert!((flow_plain - name_node.expected_total()).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_labels_and_total() {
        let t = parse("<r><a><x>1</x></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//a/x", t.terms()).unwrap();
        let ex = explain(&s, &q);
        let text = ex.render(&s, &q);
        assert!(text.contains("estimate:"));
        assert!(text.contains("(a)"));
        assert!(text.contains("(x)"));
    }
}
