//! Estimation tracing — the optimizer-facing "explain" companion to
//! [`crate::estimate`].
//!
//! [`explain`] reports, per *variable* query node, which synopsis
//! clusters the node embeds into and the expected number of elements
//! bound there (ignoring sibling-branch multiplicities — the step
//! cardinalities a cost model consumes), alongside the overall
//! binding-tuple estimate. This is the information a query optimizer
//! reads off the synopsis to choose join orders / anchor plans on the
//! most selective fragment.
//!
//! Since the tracing subsystem landed, `explain` is a *view over the
//! estimator's own trace*: it runs [`crate::estimate::estimate_traced`]
//! and folds the `estimate.embed` spans (per-edge expected cardinality
//! and predicate selectivity, recorded as typed `f64` attributes) into
//! top-down population flows. There is no second estimator walk, so the
//! report can never disagree with the estimate — `Explanation::total`
//! is bitwise equal to what [`crate::estimate`] returns.

use crate::estimate::estimate_traced;
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::{BTreeMap, HashMap, HashSet};
use xcluster_obs::Trace;
use xcluster_query::{LabelTest, NodeKind, TwigQuery};

/// Expected bindings of one query node inside one synopsis cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetTrace {
    /// The synopsis cluster.
    pub node: SynopsisNodeId,
    /// Expected number of elements bound here (path flow × predicate
    /// selectivity, ignoring sibling branches).
    pub expected: f64,
    /// The predicate selectivity applied at this cluster (1 when the
    /// query node has no predicate).
    pub selectivity: f64,
}

/// Per-query-node embedding summary.
#[derive(Debug, Clone)]
pub struct NodeTrace {
    /// Query node id (in [`TwigQuery`] numbering).
    pub qnode: usize,
    /// Matching clusters with their expected cardinalities, sorted by
    /// descending expectation.
    pub targets: Vec<TargetTrace>,
}

impl NodeTrace {
    /// Total expected elements bound to this query node.
    pub fn expected_total(&self) -> f64 {
        self.targets.iter().map(|t| t.expected).sum()
    }
}

/// The result of [`explain`].
#[derive(Debug, Clone)]
pub struct Explanation {
    /// The overall binding-tuple estimate (bitwise identical to
    /// [`crate::estimate`] on the same inputs).
    pub total: f64,
    /// One trace per *variable* query node, in query-node order.
    pub nodes: Vec<NodeTrace>,
}

impl Explanation {
    /// Renders a compact human-readable report.
    pub fn render(&self, s: &Synopsis, q: &TwigQuery) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "estimate: {:.2} binding tuples for {}", self.total, q);
        for t in &self.nodes {
            let label = match &q.node(t.qnode).label {
                LabelTest::Tag(l) => l.clone(),
                LabelTest::Wildcard => "*".to_string(),
            };
            let _ = writeln!(
                out,
                "  q{} ({label}): {:.2} expected over {} cluster(s)",
                t.qnode,
                t.expected_total(),
                t.targets.len()
            );
            for tt in t.targets.iter().take(4) {
                let _ = writeln!(
                    out,
                    "      {}#{}  expected {:.2}  σ={:.4}",
                    s.label_str(tt.node),
                    tt.node,
                    tt.expected,
                    tt.selectivity
                );
            }
        }
        out
    }
}

/// One `estimate.embed` span, decoded: the estimator considered mapping
/// query node `qnode` (whose parent was embedded at cluster `from`)
/// into cluster `target`, reaching `expected` elements per parent
/// element, with predicate selectivity `sigma`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EmbedStep {
    pub qnode: usize,
    pub from: SynopsisNodeId,
    pub target: SynopsisNodeId,
    pub expected: f64,
    pub sigma: f64,
}

/// Decodes every `estimate.embed` span of an estimation trace, in span
/// (start) order.
pub(crate) fn embed_steps(trace: &Trace) -> Vec<EmbedStep> {
    trace
        .by_name("estimate.embed")
        .filter_map(|(_, span)| {
            Some(EmbedStep {
                qnode: span.attr("qnode")?.as_u64()? as usize,
                from: span.attr("from")?.as_u64()? as usize,
                target: span.attr("cluster")?.as_u64()? as usize,
                expected: span.attr("expected")?.as_f64()?,
                sigma: span.attr("sigma")?.as_f64()?,
            })
        })
        .collect()
}

/// Top-down population flows reconstructed from an estimation trace:
/// for each *variable* query node reachable through variable ancestors,
/// the expected number of elements bound at each target cluster
/// (ignoring sibling-branch multiplicities). Also returns the predicate
/// selectivity the estimator applied at each (qnode, cluster).
pub(crate) type Populations = HashMap<usize, BTreeMap<SynopsisNodeId, f64>>;

pub(crate) fn populations_from_trace(
    query: &TwigQuery,
    trace: &Trace,
    root_cluster: SynopsisNodeId,
) -> (Populations, HashMap<(usize, SynopsisNodeId), f64>) {
    let mut per_q: HashMap<usize, Vec<EmbedStep>> = HashMap::new();
    for step in embed_steps(trace) {
        per_q.entry(step.qnode).or_default().push(step);
    }
    let mut populations: Populations = HashMap::new();
    let mut sigmas: HashMap<(usize, SynopsisNodeId), f64> = HashMap::new();
    let mut root_pop = BTreeMap::new();
    root_pop.insert(root_cluster, 1.0);
    populations.insert(query.root(), root_pop);
    // Top-down flow in query-node order (parents precede children).
    for q in query.node_ids() {
        let node = query.node(q);
        if node.kind != NodeKind::Variable {
            continue;
        }
        let Some(parent) = node.parent else { continue };
        let Some(parent_pop) = populations.get(&parent).cloned() else {
            continue;
        };
        let mut pop: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
        // The estimator expands (qnode, from) once per *occurrence* of
        // `from` in a parent embedding; repeated occurrences replay
        // identical spans, so fold each (from, target) edge exactly
        // once (targets within one expansion are distinct).
        let mut seen: HashSet<(SynopsisNodeId, SynopsisNodeId)> = HashSet::new();
        for step in per_q.get(&q).map(|v| v.as_slice()).unwrap_or(&[]) {
            if !seen.insert((step.from, step.target)) {
                continue;
            }
            sigmas.insert((q, step.target), step.sigma);
            if step.sigma > 0.0 {
                if let Some(&flow) = parent_pop.get(&step.from) {
                    *pop.entry(step.target).or_insert(0.0) += flow * step.expected * step.sigma;
                }
            }
        }
        populations.insert(q, pop);
    }
    (populations, sigmas)
}

/// Estimates `query` and reports the per-node embedding cardinalities,
/// derived from the estimator's own trace.
pub fn explain(s: &Synopsis, query: &TwigQuery) -> Explanation {
    let (total, trace) = estimate_traced(s, query);
    let (populations, sigmas) = populations_from_trace(query, &trace, s.root());
    let mut nodes = Vec::new();
    for q in query.node_ids() {
        if query.node(q).kind != NodeKind::Variable {
            continue;
        }
        let mut targets: Vec<TargetTrace> = populations
            .get(&q)
            .map(|pop| {
                pop.iter()
                    .map(|(&node, &expected)| TargetTrace {
                        node,
                        expected,
                        selectivity: sigmas.get(&(q, node)).copied().unwrap_or(1.0),
                    })
                    .collect()
            })
            .unwrap_or_default();
        targets.sort_by(|a, b| {
            b.expected
                .total_cmp(&a.expected)
                .then_with(|| a.node.cmp(&b.node))
        });
        nodes.push(NodeTrace { qnode: q, targets });
    }
    Explanation { total, nodes }
}
