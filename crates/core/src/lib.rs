//! **XCluster synopses** — a reproduction of Polyzotis & Garofalakis,
//! *XCluster Synopses for Structured XML Content*, ICDE 2006.
//!
//! An XCluster synopsis is a node- and edge-labeled *type-respecting graph
//! synopsis* of an XML document (Definition 3.1): a partitioning of the
//! document's elements into structure-value clusters where every cluster
//! node `u` stores
//!
//! 1. the element count `count(u) = |extent(u)|`,
//! 2. per-edge average child counters `count(u, v)`, and
//! 3. a value summary `vsumm(u)` of the cluster's typed content (numeric
//!    histogram / pruned suffix tree / end-biased term histogram).
//!
//! The crate implements the paper end to end:
//!
//! * [`synopsis`] — the graph-synopsis model with size accounting;
//! * [`reference`] — the detailed reference synopsis (count-stable,
//!   single-incoming-path refinement with per-path value summaries);
//! * [`delta`] — the localized Δ(S, S′) clustering-error metric driving
//!   compression choices (Section 4.1), plus incremental maintenance:
//!   document deltas ([`DocDelta`]) applied in place to a built synopsis
//!   with dirty-region re-merging (DESIGN.md §13);
//! * [`merge`] — the node-merge operation (Section 4.1);
//! * [`build`] — the two-phase `XClusterBuild` algorithm with the
//!   marginal-loss candidate pool (Section 4.3, Figures 5–6);
//! * [`estimate`] — selectivity estimation for twig queries via query
//!   embeddings under Path–Value Independence (Section 5);
//! * [`baseline`] — the TreeSketch-style *global* merge metric used in
//!   the Section 6.2 comparison, plus the tag-only smallest synopsis;
//! * [`metrics`] — the evaluation metrics of Section 6.1 (average
//!   absolute relative error with a sanity bound, absolute error for
//!   low-count queries);
//! * [`par`] — the deterministic parallel execution layer: chunked
//!   candidate scoring for the build and the batch estimation engine,
//!   both byte-identical to sequential runs at any thread count;
//! * [`plan`] — compiled query plans (labels interned, predicates
//!   pre-lowered) and the per-synopsis [`plan::ReachCache`], executed by
//!   an interpreter bitwise-identical to [`estimate`]'s.
//!
//! # Quick start
//!
//! ```
//! use xcluster_core::{build::{BuildConfig, build_synopsis}, Estimator};
//! use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
//! use xcluster_query::{parse_twig, EvalIndex, evaluate};
//! use xcluster_xml::parse;
//!
//! let doc = parse(
//!     "<bib><paper><year>1998</year><title>Histograms</title></paper>\
//!      <paper><year>2004</year><title>Sketches</title></paper></bib>",
//! ).unwrap();
//! let reference = reference_synopsis(&doc, &ReferenceConfig::default());
//! let synopsis = build_synopsis(reference, &BuildConfig { b_str: 512, b_val: 1024, ..BuildConfig::default() });
//!
//! let est = Estimator::new(&synopsis);
//! let q = parse_twig("//paper[year>2000]/title", doc.terms()).unwrap();
//! let truth = evaluate(&q, &doc, &EvalIndex::build(&doc));
//! assert!((est.estimate(&q) - truth).abs() < 1.0);
//! ```

pub mod autosplit;
pub mod baseline;
pub mod build;
pub mod codec;
pub mod delta;
pub mod estimate;
pub mod explain;
pub mod footprint;
pub mod merge;
pub mod metrics;
pub mod par;
pub mod plan;
pub mod quality;
pub mod reference;
pub mod synopsis;

pub use build::{build_synopsis, try_build_synopsis, BuildConfig, BuildConfigError};
pub use delta::{
    apply_delta, apply_to_tree, extract_subtree, inverse_delta, DeltaOp, DeltaStats, DocDelta,
    TreePatch,
};
pub use estimate::{estimate, estimate_traced, Estimator};
pub use explain::{explain, Explanation};
pub use footprint::MemoryFootprint;
pub use metrics::{
    evaluate_workload, relative_error, AttributionReport, ClusterAttribution, ErrorReport,
    EvalOptions, QueryErrorRecord, WorkloadEval,
};
#[allow(deprecated)]
pub use metrics::{
    evaluate_workload_attributed, evaluate_workload_attributed_with, evaluate_workload_with,
};
#[allow(deprecated)]
pub use par::estimate_batch;
pub use par::resolve_threads;
pub use plan::{compile, Plan, PlanNode, ReachCache, ReachCacheStats};
pub use quality::{ClusterHealth, QualityReport};
pub use reference::{reference_synopsis, ReferenceConfig};
pub use synopsis::{Synopsis, SynopsisNodeId};
