//! The XCluster graph-synopsis model (paper Section 3, Definition 3.1).
//!
//! A synopsis is a directed graph whose nodes are structure-value
//! clusters. The graph is stored as an arena with tombstones: node merges
//! retire the two inputs and append the merged cluster, so
//! [`SynopsisNodeId`]s stay stable across compression and the lazy
//! candidate heap of the build algorithm can detect stale entries.

use std::collections::BTreeMap;
use xcluster_summaries::footprint::{SYNOPSIS_EDGE_BYTES, SYNOPSIS_NODE_BYTES};
use xcluster_summaries::ValueSummary;
use xcluster_xml::{Interner, Symbol, ValueType};

/// Identifier of a cluster node in a [`Synopsis`] arena.
pub type SynopsisNodeId = usize;

/// One structure-value cluster.
#[derive(Debug, Clone)]
pub struct SynopsisNode {
    /// Common element label of the extent (`label(u)`).
    pub label: Symbol,
    /// Common value type of the extent (`type(u)`).
    pub vtype: ValueType,
    /// `count(u) = |extent(u)|`.
    pub count: f64,
    /// Child edges `(v, count(u, v))`: average number of `v`-children per
    /// element of `u`. Sorted by target id.
    pub children: Vec<(SynopsisNodeId, f64)>,
    /// Parent node ids (deduplicated, sorted).
    pub parents: Vec<SynopsisNodeId>,
    /// The value summary `vsumm(u)`, if this cluster is summarized.
    pub vsumm: Option<ValueSummary>,
    /// Tombstone flag: false once merged away.
    pub alive: bool,
    /// Version counter for lazy candidate-heap invalidation; bumped on
    /// any change to the node or its outgoing edges.
    pub version: u32,
}

impl SynopsisNode {
    /// Average child count toward `target` (0 when no edge exists).
    pub fn edge_count(&self, target: SynopsisNodeId) -> f64 {
        match self.children.binary_search_by_key(&target, |&(t, _)| t) {
            Ok(i) => self.children[i].1,
            Err(_) => 0.0,
        }
    }
}

/// An XCluster synopsis graph.
#[derive(Debug, Clone)]
pub struct Synopsis {
    nodes: Vec<SynopsisNode>,
    root: SynopsisNodeId,
    /// Copy of the document's label interner (synopses are self-contained).
    labels: Interner,
    /// Copy of the document's term dictionary, so `ftcontains` queries can
    /// be parsed against a saved synopsis without the source document.
    terms: Interner,
    /// Maximum root-to-leaf depth of the source document; caps the
    /// descendant-axis path expansion during estimation (merged synopses
    /// of recursive data can contain cycles).
    max_depth: usize,
    /// Monotonic maintenance version: 0 for a from-scratch build, bumped
    /// once per applied (non-empty) [`crate::delta::DocDelta`]. Stamped
    /// into the codec header and exposed by the server so consumers can
    /// tell which refresh of a synopsis produced an estimate.
    version: u64,
}

impl Synopsis {
    /// Creates a synopsis with the given root node.
    pub fn new(labels: Interner, root_label: Symbol, max_depth: usize) -> Self {
        let root = SynopsisNode {
            label: root_label,
            vtype: ValueType::None,
            count: 1.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        };
        Synopsis {
            nodes: vec![root],
            root: 0,
            labels,
            terms: Interner::new(),
            max_depth,
            version: 0,
        }
    }

    /// The maintenance version (0 = built from scratch, incremented once
    /// per applied delta).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Sets the maintenance version (codec decode, server reload).
    pub fn set_version(&mut self, version: u64) {
        self.version = version;
    }

    /// Increments the maintenance version.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Raises the depth cap (a subtree insertion can deepen the document).
    pub fn set_max_depth(&mut self, max_depth: usize) {
        self.max_depth = max_depth;
    }

    /// Interns a label into the synopsis's own label interner. Incremental
    /// maintenance interns fragment labels in the same order as the
    /// mutated document, keeping the two interners symbol-aligned.
    pub fn intern_label(&mut self, label: &str) -> Symbol {
        self.labels.intern(label)
    }

    /// Interns a term into the synopsis's term dictionary (same alignment
    /// discipline as [`Synopsis::intern_label`]).
    pub fn intern_term(&mut self, term: &str) -> Symbol {
        self.terms.intern(term)
    }

    /// Installs the document's term dictionary (for self-contained
    /// `ftcontains` parsing against the synopsis).
    pub fn set_terms(&mut self, terms: Interner) {
        self.terms = terms;
    }

    /// The term dictionary carried by this synopsis.
    pub fn terms(&self) -> &Interner {
        &self.terms
    }

    /// The root cluster (always holds exactly the document root).
    pub fn root(&self) -> SynopsisNodeId {
        self.root
    }

    /// The document depth cap used for descendant estimation.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The label interner.
    pub fn labels(&self) -> &Interner {
        &self.labels
    }

    /// Resolves a node's label string.
    pub fn label_str(&self, id: SynopsisNodeId) -> &str {
        self.labels.resolve(self.nodes[id].label)
    }

    /// Borrows a node.
    pub fn node(&self, id: SynopsisNodeId) -> &SynopsisNode {
        &self.nodes[id]
    }

    /// Mutably borrows a node (bumps its version).
    pub fn node_mut(&mut self, id: SynopsisNodeId) -> &mut SynopsisNode {
        self.nodes[id].version += 1;
        &mut self.nodes[id]
    }

    /// Appends a fresh node, returning its id.
    pub fn push_node(&mut self, node: SynopsisNode) -> SynopsisNodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Total arena length (including tombstones).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Allocated arena capacity (≥ [`Synopsis::arena_len`]); the slack
    /// is counted by the memory-footprint accounting.
    pub fn arena_capacity(&self) -> usize {
        self.nodes.capacity()
    }

    /// Ids of all live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = SynopsisNodeId> + '_ {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].alive)
    }

    /// Number of live nodes.
    pub fn num_nodes(&self) -> usize {
        self.live_nodes().count()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.live_nodes()
            .map(|i| self.nodes[i].children.len())
            .sum()
    }

    /// Number of live nodes carrying value summaries (the "Value" column
    /// of the paper's Table 1).
    pub fn num_value_nodes(&self) -> usize {
        self.live_nodes()
            .filter(|&i| self.nodes[i].vsumm.is_some())
            .count()
    }

    /// Structural storage footprint: node headers + edge entries
    /// (`|S|_str`, charged against `Bstr`).
    pub fn structural_bytes(&self) -> usize {
        self.num_nodes() * SYNOPSIS_NODE_BYTES + self.num_edges() * SYNOPSIS_EDGE_BYTES
    }

    /// Value-summary storage footprint (`|S|_val`, charged against `Bval`).
    pub fn value_bytes(&self) -> usize {
        self.live_nodes()
            .filter_map(|i| self.nodes[i].vsumm.as_ref())
            .map(|v| v.size_bytes())
            .sum()
    }

    /// Total footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.structural_bytes() + self.value_bytes()
    }

    /// Adds (or accumulates) a child edge `u → v` with average count `c`.
    pub fn add_edge(&mut self, u: SynopsisNodeId, v: SynopsisNodeId, c: f64) {
        let node = &mut self.nodes[u];
        node.version += 1;
        match node.children.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(i) => node.children[i].1 += c,
            Err(i) => node.children.insert(i, (v, c)),
        }
        let parents = &mut self.nodes[v].parents;
        if let Err(i) = parents.binary_search(&u) {
            parents.insert(i, u);
        }
    }

    /// Sets the exact average count of edge `u → v`, creating the edge if
    /// missing and removing it when `c` drops to zero or below.
    pub fn set_edge(&mut self, u: SynopsisNodeId, v: SynopsisNodeId, c: f64) {
        if c <= 0.0 {
            self.remove_edge(u, v);
            return;
        }
        let node = &mut self.nodes[u];
        node.version += 1;
        match node.children.binary_search_by_key(&v, |&(t, _)| t) {
            Ok(i) => node.children[i].1 = c,
            Err(i) => node.children.insert(i, (v, c)),
        }
        let parents = &mut self.nodes[v].parents;
        if let Err(i) = parents.binary_search(&u) {
            parents.insert(i, u);
        }
    }

    /// Removes edge `u → v` (and the matching parent link), if present.
    pub fn remove_edge(&mut self, u: SynopsisNodeId, v: SynopsisNodeId) {
        let node = &mut self.nodes[u];
        if let Ok(i) = node.children.binary_search_by_key(&v, |&(t, _)| t) {
            node.version += 1;
            node.children.remove(i);
            let parents = &mut self.nodes[v].parents;
            if let Ok(j) = parents.binary_search(&u) {
                parents.remove(j);
            }
        }
    }

    /// Live nodes grouped by `(label, value type)` — the merge-compatible
    /// classes of the type-respecting partition. Ordered (`BTreeMap`) so
    /// that build passes iterating the groups are deterministic across
    /// processes; merge order feeds the candidate pool, and HashMap's
    /// per-process seed would make two runs of the same pinned build
    /// produce different synopses.
    pub fn nodes_by_label_type(&self) -> BTreeMap<(Symbol, ValueType), Vec<SynopsisNodeId>> {
        let mut map: BTreeMap<(Symbol, ValueType), Vec<SynopsisNodeId>> = BTreeMap::new();
        for id in self.live_nodes() {
            let n = &self.nodes[id];
            map.entry((n.label, n.vtype)).or_default().push(id);
        }
        map
    }

    /// Levels for the bottom-up candidate pool (paper Section 4.3): the
    /// shortest outgoing path length to a leaf descendant. Leaves are
    /// level 0; nodes that cannot reach a leaf (pure cycles) get
    /// `u32::MAX`. Indexed by node id; tombstones get `u32::MAX`.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![u32::MAX; self.nodes.len()];
        let mut queue: Vec<SynopsisNodeId> = Vec::new();
        for id in self.live_nodes() {
            if self.nodes[id].children.is_empty() {
                level[id] = 0;
                queue.push(id);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            let next = level[v] + 1;
            for &p in &self.nodes[v].parents {
                if self.nodes[p].alive && level[p] > next {
                    level[p] = next;
                    queue.push(p);
                }
            }
        }
        level
    }

    /// Debug validation: edge lists sorted, parents consistent with child
    /// edges, tombstones unreferenced. Used by tests and debug assertions.
    pub fn check_consistency(&self) -> Result<(), String> {
        for id in self.live_nodes() {
            let n = &self.nodes[id];
            for w in n.children.windows(2) {
                if w[0].0 >= w[1].0 {
                    return Err(format!("node {id}: child edges unsorted"));
                }
            }
            for &(t, c) in &n.children {
                if !self.nodes[t].alive {
                    return Err(format!("node {id}: edge to dead node {t}"));
                }
                if c <= 0.0 {
                    return Err(format!("node {id}: non-positive edge count to {t}"));
                }
                if self.nodes[t].parents.binary_search(&id).is_err() {
                    return Err(format!("node {t}: missing parent link from {id}"));
                }
            }
            for &p in &n.parents {
                if !self.nodes[p].alive {
                    return Err(format!("node {id}: dead parent {p}"));
                }
                if self.nodes[p].edge_count(id) == 0.0 {
                    return Err(format!("node {id}: parent {p} has no matching edge"));
                }
            }
        }
        if !self.nodes[self.root].alive {
            return Err("root is dead".into());
        }
        Ok(())
    }

    /// Pretty-prints the live graph (diagnostics).
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for id in self.live_nodes() {
            let n = &self.nodes[id];
            let _ = write!(
                out,
                "{}#{} ({}x, {})",
                self.labels.resolve(n.label),
                id,
                n.count,
                n.vtype
            );
            for &(t, c) in &n.children {
                let _ = write!(
                    out,
                    " ->{}#{}:{:.2}",
                    self.labels.resolve(self.nodes[t].label),
                    t,
                    c
                );
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Synopsis {
        let mut labels = Interner::new();
        let root_l = labels.intern("root");
        let a_l = labels.intern("a");
        let b_l = labels.intern("b");
        let mut s = Synopsis::new(labels, root_l, 3);
        let a = s.push_node(SynopsisNode {
            label: a_l,
            vtype: ValueType::None,
            count: 4.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
        let b = s.push_node(SynopsisNode {
            label: b_l,
            vtype: ValueType::Numeric,
            count: 8.0,
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
        s.add_edge(0, a, 4.0);
        s.add_edge(a, b, 2.0);
        s
    }

    #[test]
    fn construction_and_counts() {
        let s = tiny();
        assert_eq!(s.num_nodes(), 3);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.node(1).count, 4.0);
        assert_eq!(s.node(0).edge_count(1), 4.0);
        assert_eq!(s.node(1).edge_count(2), 2.0);
        assert_eq!(s.node(1).edge_count(0), 0.0);
        s.check_consistency().unwrap();
    }

    #[test]
    fn add_edge_accumulates() {
        let mut s = tiny();
        s.add_edge(0, 1, 1.5);
        assert_eq!(s.node(0).edge_count(1), 5.5);
        assert_eq!(s.num_edges(), 2);
    }

    #[test]
    fn structural_bytes_track_graph_size() {
        let s = tiny();
        assert_eq!(
            s.structural_bytes(),
            3 * SYNOPSIS_NODE_BYTES + 2 * SYNOPSIS_EDGE_BYTES
        );
        assert_eq!(s.value_bytes(), 0);
    }

    #[test]
    fn levels_bottom_up() {
        let s = tiny();
        let l = s.levels();
        assert_eq!(l[2], 0); // leaf b
        assert_eq!(l[1], 1); // a
        assert_eq!(l[0], 2); // root
    }

    #[test]
    fn levels_with_cycle() {
        let mut s = tiny();
        // a -> a cycle (recursive label after a hypothetical merge).
        s.add_edge(1, 1, 0.5);
        let l = s.levels();
        assert_eq!(l[2], 0);
        assert_eq!(l[1], 1); // still reaches leaf b
    }

    #[test]
    fn version_bumps_on_mutation() {
        let mut s = tiny();
        let v0 = s.node(1).version;
        s.node_mut(1).count = 5.0;
        assert!(s.node(1).version > v0);
        let v1 = s.node(1).version;
        s.add_edge(1, 2, 1.0);
        assert!(s.node(1).version > v1);
    }

    #[test]
    fn grouping_by_label_type() {
        let s = tiny();
        let groups = s.nodes_by_label_type();
        assert_eq!(groups.len(), 3);
        for ids in groups.values() {
            assert_eq!(ids.len(), 1);
        }
    }

    #[test]
    fn set_edge_overwrites_and_removes() {
        let mut s = tiny();
        s.set_edge(0, 1, 7.5);
        assert_eq!(s.node(0).edge_count(1), 7.5);
        assert_eq!(s.num_edges(), 2);
        s.set_edge(0, 2, 3.0); // creates a fresh edge + parent link
        assert!(s.node(2).parents.binary_search(&0).is_ok());
        s.check_consistency().unwrap();
        s.set_edge(0, 2, 0.0); // zero count removes the edge again
        assert_eq!(s.node(0).edge_count(2), 0.0);
        assert!(s.node(2).parents.binary_search(&0).is_err());
        s.check_consistency().unwrap();
    }

    #[test]
    fn remove_edge_clears_parent_link() {
        let mut s = tiny();
        s.remove_edge(1, 2);
        assert_eq!(s.node(1).edge_count(2), 0.0);
        assert!(s.node(2).parents.is_empty());
        s.remove_edge(1, 2); // idempotent on a missing edge
        s.check_consistency().unwrap();
    }

    #[test]
    fn version_starts_at_zero_and_bumps() {
        let mut s = tiny();
        assert_eq!(s.version(), 0);
        s.bump_version();
        s.bump_version();
        assert_eq!(s.version(), 2);
        s.set_version(9);
        assert_eq!(s.version(), 9);
    }

    #[test]
    fn intern_helpers_extend_the_dictionaries() {
        let mut s = tiny();
        let before = s.labels().len();
        let sym = s.intern_label("fresh");
        assert_eq!(sym.index(), before);
        assert_eq!(s.labels().resolve(sym), "fresh");
        let t = s.intern_term("word");
        assert_eq!(s.terms().resolve(t), "word");
        s.set_max_depth(42);
        assert_eq!(s.max_depth(), 42);
    }

    #[test]
    fn consistency_detects_dead_edge_targets() {
        let mut s = tiny();
        s.node_mut(2).alive = false;
        assert!(s.check_consistency().is_err());
    }
}
