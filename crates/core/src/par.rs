//! Deterministic parallel execution layer (`std::thread::scope`, no
//! external dependencies — the build environment is offline).
//!
//! Two hot paths fan out through this module:
//!
//! 1. **Candidate scoring** during `XClusterBuild` phase 1/2
//!    ([`chunked_map`], called from `build::build_pool` and
//!    `build::value_compression`): work items are partitioned into
//!    *contiguous* chunks in their original order, one chunk per worker,
//!    and the per-item results are concatenated back in item order. Since
//!    every score (`Δ(S,S′)/Δbytes`, summary alignment, value-compression
//!    deltas) is a pure function of the shared `&Synopsis`, the parallel
//!    result vector is **identical** — element for element, bit for bit —
//!    to the sequential one, and the synopsis produced by a parallel
//!    build is byte-identical to `threads = 1` (locked down by
//!    `tests/parallel.rs`).
//! 2. **Batch estimation** (`run_shards`, driving
//!    [`crate::estimate::Estimator`]'s batch entry points): compiled
//!    plans are sharded across workers the same way. Each query's
//!    estimate touches only its own accumulation order and the shared
//!    [`crate::plan::ReachCache`] memoizes only pure functions of the
//!    synopsis, so per-query results are bitwise equal to sequential
//!    [`crate::estimate::estimate`] calls; each worker records its
//!    shard's metrics into a private [`xcluster_obs::Registry`] that is
//!    merged into the global registry after the join, so instrumentation
//!    stays race-free without hot-path synchronization.
//!
//! The partition axis for the build is the `(label, type)` group (the
//! merge-compatible classes of the type-respecting partition) — groups
//! are independent scoring units, exactly the per-label/per-path
//! independence that path-partitioned systems exploit.

use crate::estimate::Estimator;
use crate::synopsis::Synopsis;
use std::time::Instant;
use xcluster_obs::trace::Trace;
use xcluster_obs::Registry;
use xcluster_query::TwigQuery;

/// Registry handles for the batch-estimation instrumentation
/// (`estimate.batch*`). Per-shard metrics are recorded into thread-local
/// registries and merged after the join; only these whole-batch handles
/// touch the global registry from the coordinating thread.
mod stats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, gauge, Counter, Gauge};

    pub static BATCHES: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("estimate.batches"));
    pub static BATCH_THREADS: LazyLock<Arc<Gauge>> =
        LazyLock::new(|| gauge("estimate.batch_threads"));
}

/// Resolves a thread-count knob: `0` means "use every available core"
/// (`std::thread::available_parallelism`), anything else is taken
/// literally. Never returns 0.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Splits `items` into at most `chunks` contiguous, near-equal slices
/// (first `len % chunks` slices get one extra item). Empty slices are
/// skipped, so the iterator yields `min(chunks, len)` slices whose
/// concatenation is `items` in order.
fn balanced_chunks<T>(items: &[T], chunks: usize) -> Vec<&[T]> {
    let chunks = chunks.max(1);
    let base = items.len() / chunks;
    let rem = items.len() % chunks;
    let mut out = Vec::with_capacity(chunks.min(items.len()));
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < rem);
        if size == 0 {
            break;
        }
        out.push(&items[start..start + size]);
        start += size;
    }
    out
}

/// Maps `f` over `items` on a fixed pool of `threads` scoped workers
/// with deterministic contiguous partitioning, returning the results in
/// item order — the output is indistinguishable from
/// `items.iter().map(f).collect()` whenever `f` is pure, regardless of
/// thread count or scheduling.
///
/// `threads` is resolved via [`resolve_threads`] and clamped to the item
/// count; with one worker (or one item) everything runs inline on the
/// calling thread with no spawn overhead. A panic in any worker is
/// re-raised on the calling thread after the scope joins.
pub fn chunked_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = resolve_threads(threads).min(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = balanced_chunks(items, threads)
            .into_iter()
            .map(|chunk| {
                let f = &f;
                scope.spawn(move || chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

/// Estimates every query of a workload shard-parallel across `threads`
/// workers (`0` = available parallelism), returning the estimates in
/// query order.
#[deprecated(
    note = "use xcluster_core::Estimator::new(s).with_threads(threads).estimate_batch(queries)"
)]
pub fn estimate_batch(s: &Synopsis, queries: &[TwigQuery], threads: usize) -> Vec<f64> {
    Estimator::new(s)
        .with_threads(threads)
        .estimate_batch(queries)
}

/// Batch estimation over any container of queries, via an accessor.
#[deprecated(
    note = "use xcluster_core::Estimator::new(s).with_threads(threads).estimate_batch_by(items, get)"
)]
pub fn estimate_batch_by<T, G>(s: &Synopsis, items: &[T], threads: usize, get: G) -> Vec<f64>
where
    T: Sync,
    G: Fn(&T) -> &TwigQuery + Sync,
{
    Estimator::new(s)
        .with_threads(threads)
        .estimate_batch_by(items, get)
}

/// Traced batch estimation: each query additionally returns the trace
/// of its embedding walk.
#[deprecated(
    note = "use xcluster_core::Estimator::new(s).with_threads(threads).estimate_batch_traced_by(items, get)"
)]
pub fn estimate_batch_traced_by<T, G>(
    s: &Synopsis,
    items: &[T],
    threads: usize,
    get: G,
) -> Vec<(f64, Trace)>
where
    T: Sync,
    G: Fn(&T) -> &TwigQuery + Sync,
{
    Estimator::new(s)
        .with_threads(threads)
        .estimate_batch_traced_by(items, get)
}

/// Shared batch driver behind [`Estimator`]'s batch entry points:
/// shards `items` into contiguous chunks, runs `est` per item on scoped
/// workers, concatenates results in item order, and merges each
/// worker's private registry into the global one. Output is identical to
/// `items.iter().map(est).collect()` whenever `est` is pure (up to
/// interior-mutable caches whose entries are pure functions of shared
/// state — see [`crate::plan::ReachCache`]).
pub(crate) fn run_shards<T, R>(items: &[T], threads: usize, est: impl Fn(&T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    stats::BATCHES.inc();
    stats::BATCH_THREADS.set(threads as i64);
    let shard = |chunk: &[T]| -> Vec<R> {
        // Private per-thread registry: race-free by construction, merged
        // once after the shard finishes (single lock acquisition per
        // metric name instead of one contended atomic per query).
        let local = Registry::default();
        let queries = local.counter("estimate.batch_queries");
        let query_ns = local.histogram("estimate.batch_query_ns");
        let timed = xcluster_obs::enabled();
        let mut out = Vec::with_capacity(chunk.len());
        for item in chunk {
            if timed {
                let t = Instant::now();
                out.push(est(item));
                query_ns.record_duration(t.elapsed());
            } else {
                out.push(est(item));
            }
            queries.inc();
        }
        xcluster_obs::global().merge_from(&local);
        out
    };
    if threads <= 1 {
        return shard(items);
    }
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = balanced_chunks(items, threads)
            .into_iter()
            .map(|chunk| scope.spawn(move || shard(chunk)))
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => out.extend(part),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::parse_twig;
    use xcluster_xml::parse;

    #[test]
    fn resolve_threads_zero_is_available_parallelism() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn balanced_chunks_cover_in_order() {
        let items: Vec<usize> = (0..10).collect();
        for chunks in 1..=12 {
            let parts = balanced_chunks(&items, chunks);
            let flat: Vec<usize> = parts.iter().flat_map(|c| c.iter().copied()).collect();
            assert_eq!(flat, items, "chunks = {chunks}");
            assert!(parts.len() <= chunks);
            let (min, max) = parts.iter().fold((usize::MAX, 0), |(lo, hi), c| {
                (lo.min(c.len()), hi.max(c.len()))
            });
            assert!(max - min <= 1, "unbalanced: {min}..{max}");
        }
        assert!(balanced_chunks::<usize>(&[], 4).is_empty());
    }

    #[test]
    fn chunked_map_matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                chunked_map(&items, threads, |&x| x * x + 1),
                expect,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn chunked_map_propagates_worker_panics() {
        let items: Vec<u64> = (0..16).collect();
        let r = std::panic::catch_unwind(|| {
            chunked_map(&items, 4, |&x| {
                assert!(x != 11, "boom");
                x
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn estimate_batch_bitwise_equals_sequential() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a><b><x>4</x></b></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let queries: Vec<_> = ["//a", "//x", "/a/x", "//b/x", "//*", "//a{/x}{/x}"]
            .iter()
            .map(|q| parse_twig(q, t.terms()).unwrap())
            .collect();
        let seq: Vec<f64> = queries
            .iter()
            .map(|q| crate::estimate::estimate(&s, q))
            .collect();
        for threads in [1, 2, 4, 8] {
            let batch = Estimator::new(&s)
                .with_threads(threads)
                .estimate_batch(&queries);
            assert_eq!(batch.len(), seq.len());
            for (i, (a, b)) in seq.iter().zip(&batch).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "query {i} at {threads} threads");
            }
        }
    }

    #[test]
    fn estimate_batch_empty_workload() {
        let t = parse("<r><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        assert!(Estimator::new(&s)
            .with_threads(4)
            .estimate_batch(&[])
            .is_empty());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_batch_shims_match_the_session() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let queries: Vec<_> = ["//a", "//a/x", "//*"]
            .iter()
            .map(|q| parse_twig(q, t.terms()).unwrap())
            .collect();
        let session = Estimator::new(&s).with_threads(2).estimate_batch(&queries);
        let shim = estimate_batch(&s, &queries, 2);
        for (a, b) in session.iter().zip(&shim) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn batch_metrics_are_merged_from_shards() {
        let t = parse("<r><a/><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let queries: Vec<_> = (0..12)
            .map(|_| parse_twig("//a", t.terms()).unwrap())
            .collect();
        let before = xcluster_obs::counter("estimate.batch_queries").get();
        Estimator::new(&s).with_threads(3).estimate_batch(&queries);
        let after = xcluster_obs::counter("estimate.batch_queries").get();
        assert_eq!(after - before, 12);
    }
}
