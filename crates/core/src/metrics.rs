//! Evaluation metrics (paper Section 6.1, "Evaluation Metric").
//!
//! Accuracy is the average *absolute relative error* over a workload:
//! `|c − e| / max(c, s)` for true count `c`, estimate `e`, and sanity
//! bound `s` (the 10-percentile of true workload counts), which stops
//! low-count path expressions from contributing inordinately high
//! relative errors. Figure 9 complements this with the average *absolute*
//! error over exactly those low-count queries (`c < s`).

use crate::estimate::estimate;
use crate::synopsis::Synopsis;
use xcluster_query::{QueryClass, Workload};

/// `|c − e| / max(c, s)` — the paper's absolute relative error.
pub fn relative_error(true_count: f64, estimated: f64, sanity_bound: f64) -> f64 {
    (true_count - estimated).abs() / true_count.max(sanity_bound).max(f64::MIN_POSITIVE)
}

/// Per-class and overall error aggregates for one synopsis × workload.
#[derive(Debug, Clone)]
pub struct ErrorReport {
    /// Average relative error over the whole workload (× 100 = the "%"
    /// axis of Figure 8).
    pub overall_rel: f64,
    /// Average relative error per query class (order of
    /// [`QueryClass::ALL`]; `None` when the class is absent).
    pub class_rel: [Option<f64>; 4],
    /// Figure 9: average absolute error per class over low-count queries
    /// (true count below the sanity bound).
    pub low_count_abs: [Option<f64>; 4],
    /// Average absolute estimate over the workload — negative workloads
    /// report this directly ("close to zero estimates").
    pub avg_estimate: f64,
}

impl ErrorReport {
    /// Relative error of one class, if present.
    pub fn class_rel(&self, class: QueryClass) -> Option<f64> {
        self.class_rel[class_index(class)]
    }

    /// Low-count absolute error of one class, if present.
    pub fn low_count_abs(&self, class: QueryClass) -> Option<f64> {
        self.low_count_abs[class_index(class)]
    }
}

fn class_index(class: QueryClass) -> usize {
    QueryClass::ALL.iter().position(|&c| c == class).unwrap()
}

/// Runs every workload query against the synopsis and aggregates errors.
pub fn evaluate_workload(s: &Synopsis, w: &Workload) -> ErrorReport {
    let mut rel_sum = 0.0;
    let mut rel_n = 0usize;
    let mut class_sum = [0.0f64; 4];
    let mut class_n = [0usize; 4];
    let mut low_sum = [0.0f64; 4];
    let mut low_n = [0usize; 4];
    let mut est_sum = 0.0;
    for q in &w.queries {
        let est = estimate(s, &q.query);
        est_sum += est;
        let rel = relative_error(q.true_count, est, w.sanity_bound);
        rel_sum += rel;
        rel_n += 1;
        let ci = class_index(q.class);
        class_sum[ci] += rel;
        class_n[ci] += 1;
        // "below the sanity bound" (paper Fig. 9) — inclusive, because
        // integer true counts tie at the bound in small workloads.
        if q.true_count <= w.sanity_bound {
            low_sum[ci] += (q.true_count - est).abs();
            low_n[ci] += 1;
        }
    }
    let avg = |sum: f64, n: usize| if n == 0 { None } else { Some(sum / n as f64) };
    ErrorReport {
        overall_rel: if rel_n == 0 {
            0.0
        } else {
            rel_sum / rel_n as f64
        },
        class_rel: [
            avg(class_sum[0], class_n[0]),
            avg(class_sum[1], class_n[1]),
            avg(class_sum[2], class_n[2]),
            avg(class_sum[3], class_n[3]),
        ],
        low_count_abs: [
            avg(low_sum[0], low_n[0]),
            avg(low_sum[1], low_n[1]),
            avg(low_sum[2], low_n[2]),
            avg(low_sum[3], low_n[3]),
        ],
        avg_estimate: if rel_n == 0 {
            0.0
        } else {
            est_sum / rel_n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::{workload, EvalIndex, WorkloadConfig};

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(100.0, 100.0, 10.0), 0.0);
        assert_eq!(relative_error(100.0, 50.0, 10.0), 0.5);
        // Sanity bound caps the denominator inflation for low counts.
        assert_eq!(relative_error(1.0, 11.0, 10.0), 1.0);
        assert_eq!(relative_error(0.0, 5.0, 10.0), 0.5);
    }

    #[test]
    fn reference_synopsis_scores_near_zero_on_structural_queries() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 60,
            seed: 31,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&d.tree);
        let cfg = WorkloadConfig {
            num_queries: 50,
            class_weights: [1.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        };
        let w = workload::generate_positive(&d.tree, &idx, &cfg);
        let report = evaluate_workload(&s, &w);
        assert!(
            report.overall_rel < 1e-6,
            "reference must be lossless for structure: {}",
            report.overall_rel
        );
    }

    #[test]
    fn negative_workload_estimates_near_zero() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 60,
            seed: 32,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&d.tree);
        let cfg = WorkloadConfig {
            num_queries: 40,
            ..WorkloadConfig::default()
        };
        let w = workload::generate_negative(&d.tree, &idx, &cfg);
        let report = evaluate_workload(&s, &w);
        assert!(
            report.avg_estimate < 0.5,
            "negative estimates should be near zero: {}",
            report.avg_estimate
        );
    }

    /// A one-cluster document plus a hand-built workload targeting it,
    /// so expected estimates are exact and edge cases are controllable.
    fn tiny_workload(
        counts_and_classes: &[(f64, QueryClass)],
        sanity_bound: f64,
    ) -> (Synopsis, Workload) {
        use xcluster_query::WorkloadQuery;
        let t = xcluster_xml::parse("<r><a/><a/><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let mut terms = xcluster_xml::Interner::new();
        terms.intern("unused");
        let queries = counts_and_classes
            .iter()
            .map(|&(true_count, class)| WorkloadQuery {
                // Every query is //a, estimated exactly as 3.0.
                query: xcluster_query::parse_twig("//a", &terms).unwrap(),
                class,
                true_count,
            })
            .collect();
        (
            s,
            Workload {
                queries,
                sanity_bound,
            },
        )
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let (s, mut w) = tiny_workload(&[], 1.0);
        w.queries.clear();
        let report = evaluate_workload(&s, &w);
        assert_eq!(report.overall_rel, 0.0);
        assert_eq!(report.avg_estimate, 0.0);
        assert_eq!(report.class_rel, [None, None, None, None]);
        assert_eq!(report.low_count_abs, [None, None, None, None]);
    }

    #[test]
    fn class_indexing_routes_errors_to_the_right_slot() {
        // //a estimates 3.0 on the reference synopsis. True counts of 6
        // give rel error |6-3|/6 = 0.5 in each populated class.
        let (s, w) = tiny_workload(&[(6.0, QueryClass::Struct), (6.0, QueryClass::Text)], 1.0);
        let report = evaluate_workload(&s, &w);
        assert_eq!(report.class_rel(QueryClass::Struct), Some(0.5));
        assert_eq!(report.class_rel(QueryClass::Text), Some(0.5));
        assert_eq!(report.class_rel(QueryClass::Numeric), None);
        assert_eq!(report.class_rel(QueryClass::String), None);
        assert!((report.overall_rel - 0.5).abs() < 1e-12);
        assert!((report.avg_estimate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sanity_bound_caps_low_count_denominators() {
        // True count 1 vs estimate 3: unbounded rel error would be 2.0;
        // with sanity bound 10 the denominator is capped: 2/10 = 0.2.
        let (s, w) = tiny_workload(&[(1.0, QueryClass::Struct)], 10.0);
        let report = evaluate_workload(&s, &w);
        assert!((report.overall_rel - 0.2).abs() < 1e-12);
        // The query is low-count (1 <= 10): absolute error 2.0.
        assert_eq!(report.low_count_abs(QueryClass::Struct), Some(2.0));
    }

    #[test]
    fn low_count_bucket_is_inclusive_at_the_bound() {
        // true_count == sanity_bound must count as low-count (ties are
        // common with integer counts in small workloads).
        let (s, w) = tiny_workload(&[(3.0, QueryClass::Numeric)], 3.0);
        let report = evaluate_workload(&s, &w);
        assert_eq!(report.low_count_abs(QueryClass::Numeric), Some(0.0));
        // Above the bound: excluded from the low-count aggregate.
        let (s, w) = tiny_workload(&[(4.0, QueryClass::Numeric)], 3.0);
        let report = evaluate_workload(&s, &w);
        assert_eq!(report.low_count_abs(QueryClass::Numeric), None);
    }

    #[test]
    fn zero_true_count_and_zero_bound_do_not_divide_by_zero() {
        let (s, w) = tiny_workload(&[(0.0, QueryClass::String)], 0.0);
        let report = evaluate_workload(&s, &w);
        assert!(report.overall_rel.is_finite());
        // |0 - 3| / max(0, 0, MIN_POSITIVE) is astronomically large but
        // finite; the low-count absolute error is the estimate itself.
        assert_eq!(report.low_count_abs(QueryClass::String), Some(3.0));
    }

    #[test]
    fn report_class_accessors() {
        let report = ErrorReport {
            overall_rel: 0.1,
            class_rel: [Some(0.2), None, None, Some(0.4)],
            low_count_abs: [None, Some(1.5), None, None],
            avg_estimate: 3.0,
        };
        assert_eq!(report.class_rel(QueryClass::Struct), Some(0.2));
        assert_eq!(report.class_rel(QueryClass::Numeric), None);
        assert_eq!(report.class_rel(QueryClass::Text), Some(0.4));
        assert_eq!(report.low_count_abs(QueryClass::Numeric), Some(1.5));
    }
}
