//! Evaluation metrics (paper Section 6.1, "Evaluation Metric").
//!
//! Accuracy is the average *absolute relative error* over a workload:
//! `|c − e| / max(c, s)` for true count `c`, estimate `e`, and sanity
//! bound `s` (the 10-percentile of true workload counts), which stops
//! low-count path expressions from contributing inordinately high
//! relative errors. Figure 9 complements this with the average *absolute*
//! error over exactly those low-count queries (`c < s`).

use crate::estimate::Estimator;
use crate::explain::{embed_steps, populations_from_trace};
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use xcluster_obs::trace::{self, Trace};
use xcluster_query::{NodeKind, QueryClass, Workload, WorkloadQuery};

/// `|c − e| / max(c, s)` — the paper's absolute relative error.
pub fn relative_error(true_count: f64, estimated: f64, sanity_bound: f64) -> f64 {
    (true_count - estimated).abs() / true_count.max(sanity_bound).max(f64::MIN_POSITIVE)
}

/// Per-class and overall error aggregates for one synopsis × workload.
#[derive(Debug, Clone)]
pub struct ErrorReport {
    /// Average relative error over the whole workload (× 100 = the "%"
    /// axis of Figure 8).
    pub overall_rel: f64,
    /// Average relative error per query class (order of
    /// [`QueryClass::ALL`]; `None` when the class is absent).
    pub class_rel: [Option<f64>; 4],
    /// Figure 9: average absolute error per class over low-count queries
    /// (true count below the sanity bound).
    pub low_count_abs: [Option<f64>; 4],
    /// Average absolute estimate over the workload — negative workloads
    /// report this directly ("close to zero estimates").
    pub avg_estimate: f64,
}

impl ErrorReport {
    /// Relative error of one class, if present.
    pub fn class_rel(&self, class: QueryClass) -> Option<f64> {
        self.class_rel[class_index(class)]
    }

    /// Low-count absolute error of one class, if present.
    pub fn low_count_abs(&self, class: QueryClass) -> Option<f64> {
        self.low_count_abs[class_index(class)]
    }
}

fn class_index(class: QueryClass) -> usize {
    QueryClass::ALL.iter().position(|&c| c == class).unwrap()
}

/// Error aggregation shared by the plain and attributed paths of
/// [`evaluate_workload`], so the two modes cannot drift.
#[derive(Default)]
struct ErrorAcc {
    rel_sum: f64,
    rel_n: usize,
    class_sum: [f64; 4],
    class_n: [usize; 4],
    low_sum: [f64; 4],
    low_n: [usize; 4],
    est_sum: f64,
}

impl ErrorAcc {
    fn add(&mut self, q: &WorkloadQuery, est: f64, sanity_bound: f64) {
        self.est_sum += est;
        let rel = relative_error(q.true_count, est, sanity_bound);
        self.rel_sum += rel;
        self.rel_n += 1;
        let ci = class_index(q.class);
        self.class_sum[ci] += rel;
        self.class_n[ci] += 1;
        // "below the sanity bound" (paper Fig. 9) — inclusive, because
        // integer true counts tie at the bound in small workloads.
        if q.true_count <= sanity_bound {
            self.low_sum[ci] += (q.true_count - est).abs();
            self.low_n[ci] += 1;
        }
    }

    fn report(&self) -> ErrorReport {
        let avg = |sum: f64, n: usize| if n == 0 { None } else { Some(sum / n as f64) };
        ErrorReport {
            overall_rel: if self.rel_n == 0 {
                0.0
            } else {
                self.rel_sum / self.rel_n as f64
            },
            class_rel: [
                avg(self.class_sum[0], self.class_n[0]),
                avg(self.class_sum[1], self.class_n[1]),
                avg(self.class_sum[2], self.class_n[2]),
                avg(self.class_sum[3], self.class_n[3]),
            ],
            low_count_abs: [
                avg(self.low_sum[0], self.low_n[0]),
                avg(self.low_sum[1], self.low_n[1]),
                avg(self.low_sum[2], self.low_n[2]),
                avg(self.low_sum[3], self.low_n[3]),
            ],
            avg_estimate: if self.rel_n == 0 {
                0.0
            } else {
                self.est_sum / self.rel_n as f64
            },
        }
    }
}

/// Knobs for [`evaluate_workload`]: worker count, whether to compute
/// error attribution, and whether to record per-query traces into the
/// global ring buffer.
///
/// ```
/// use xcluster_core::EvalOptions;
/// let opts = EvalOptions::default().with_threads(4).with_attribution(true);
/// assert_eq!(opts.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Batch-estimation workers (`0` = available parallelism).
    /// Defaults to 1.
    pub threads: usize,
    /// Join every query's error with the clusters its estimate flowed
    /// through and rank them ([`AttributionReport`]).
    pub attribution: bool,
    /// Record each query's trace into the global ring buffer
    /// ([`xcluster_obs::trace`]), regardless of the global capture flag.
    pub capture_traces: bool,
}

impl Default for EvalOptions {
    fn default() -> EvalOptions {
        EvalOptions {
            threads: 1,
            attribution: false,
            capture_traces: false,
        }
    }
}

impl EvalOptions {
    /// Sets the worker count (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> EvalOptions {
        self.threads = threads;
        self
    }

    /// Enables (or disables) error attribution.
    pub fn with_attribution(mut self, on: bool) -> EvalOptions {
        self.attribution = on;
        self
    }

    /// Enables (or disables) trace capture into the global ring buffer.
    pub fn with_traces(mut self, on: bool) -> EvalOptions {
        self.capture_traces = on;
        self
    }
}

/// Result of [`evaluate_workload`]: the error aggregates, plus the
/// attribution join when [`EvalOptions::attribution`] was set.
#[derive(Debug, Clone)]
pub struct WorkloadEval {
    /// Per-class and overall error aggregates.
    pub report: ErrorReport,
    /// The error-attribution join, when requested.
    pub attribution: Option<AttributionReport>,
}

/// Runs every workload query against the synopsis and aggregates errors
/// — the single workload-evaluation entry point (the former
/// `evaluate_workload_with` / `evaluate_workload_attributed{,_with}`
/// variants are deprecated shims over this).
///
/// Estimates run through an [`Estimator`] session (compiled plans plus
/// a shared reach/probe cache) across `opts.threads` workers. The
/// report is bitwise identical regardless of thread count, tracing, or
/// attribution: per-query estimates are bitwise equal and the error
/// aggregation runs sequentially in query order, so no floating-point
/// sum is reordered.
pub fn evaluate_workload(s: &Synopsis, w: &Workload, opts: &EvalOptions) -> WorkloadEval {
    let est = Estimator::new(s).with_threads(opts.threads);
    if opts.attribution || opts.capture_traces {
        let traced = est.estimate_batch_traced_by(&w.queries, |q| &q.query);
        if opts.capture_traces {
            for (_, t) in &traced {
                trace::record(t.clone());
            }
        }
        if opts.attribution {
            let (report, attribution) = attribute(s, w, &traced);
            WorkloadEval {
                report,
                attribution: Some(attribution),
            }
        } else {
            let mut acc = ErrorAcc::default();
            for (q, (e, _)) in w.queries.iter().zip(&traced) {
                acc.add(q, *e, w.sanity_bound);
            }
            WorkloadEval {
                report: acc.report(),
                attribution: None,
            }
        }
    } else {
        let estimates = est.estimate_batch_by(&w.queries, |q| &q.query);
        let mut acc = ErrorAcc::default();
        for (q, e) in w.queries.iter().zip(estimates) {
            acc.add(q, e, w.sanity_bound);
        }
        WorkloadEval {
            report: acc.report(),
            attribution: None,
        }
    }
}

/// Single-threaded plain evaluation — deprecated shim.
#[deprecated(note = "use evaluate_workload(s, w, &EvalOptions::default().with_threads(threads))")]
pub fn evaluate_workload_with(s: &Synopsis, w: &Workload, threads: usize) -> ErrorReport {
    evaluate_workload(s, w, &EvalOptions::default().with_threads(threads)).report
}

/// Absolute estimation error charged to one synopsis cluster across a
/// workload (see [`AttributionReport`]).
#[derive(Debug, Clone)]
pub struct ClusterAttribution {
    /// The synopsis cluster.
    pub cluster: SynopsisNodeId,
    /// Its label, resolved for display.
    pub label: String,
    /// Total absolute error apportioned to this cluster.
    pub abs_error: f64,
    /// Number of workload queries that charged any error here.
    pub queries: usize,
    /// Distinct value-summary kinds probed at this cluster
    /// (`histogram`, `pst`, `term`, `unsummarized`, …); empty when the
    /// cluster was only reached structurally.
    pub summary_kinds: Vec<String>,
}

/// Per-query record in an [`AttributionReport`].
#[derive(Debug, Clone)]
pub struct QueryErrorRecord {
    /// The query, rendered back to twig syntax.
    pub query: String,
    /// Workload class of the query.
    pub class: QueryClass,
    /// Exact result cardinality.
    pub true_count: f64,
    /// Synopsis estimate.
    pub estimate: f64,
    /// `|true_count − estimate|`.
    pub abs_error: f64,
    /// The cluster charged the largest share of this query's error.
    pub top_cluster: Option<SynopsisNodeId>,
}

/// Error-attribution report: each query's absolute error, joined with
/// its estimation trace and apportioned across the synopsis clusters
/// the estimate actually flowed through.
///
/// Apportioning prefers *predicate-probed* clusters (where a value
/// summary — or its absence — turned structural flow into a
/// selectivity), weighting by the structural mass arriving at each;
/// purely structural queries fall back to weighting every embedding
/// target. Queries whose trace carries no flow at all (e.g. labels
/// absent from the synopsis) land in [`AttributionReport::unattributed`].
#[derive(Debug, Clone)]
pub struct AttributionReport {
    /// Per-cluster totals, sorted by descending [`ClusterAttribution::abs_error`].
    pub clusters: Vec<ClusterAttribution>,
    /// Absolute error that could not be charged to any cluster.
    pub unattributed: f64,
    /// Per-query records, sorted by descending [`QueryErrorRecord::abs_error`].
    pub queries: Vec<QueryErrorRecord>,
}

impl AttributionReport {
    /// The cluster charged the most error, if any error was charged.
    pub fn top(&self) -> Option<&ClusterAttribution> {
        self.clusters.first()
    }

    /// Renders the top `limit` clusters and queries as a text report.
    pub fn render(&self, limit: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "error attribution ({} queries)", self.queries.len());
        for c in self.clusters.iter().take(limit) {
            let kinds = if c.summary_kinds.is_empty() {
                "structural".to_string()
            } else {
                c.summary_kinds.join(",")
            };
            let _ = writeln!(
                out,
                "  {}#{}  abs_error {:.3}  over {} query(ies)  [{kinds}]",
                c.label, c.cluster, c.abs_error, c.queries
            );
        }
        if self.unattributed > 0.0 {
            let _ = writeln!(out, "  (unattributed)  abs_error {:.3}", self.unattributed);
        }
        for q in self.queries.iter().take(limit) {
            let _ = writeln!(
                out,
                "  {}  true {:.1}  est {:.3}  abs_error {:.3}",
                q.query, q.true_count, q.estimate, q.abs_error
            );
        }
        out
    }
}

/// Attributed evaluation — deprecated shim.
#[deprecated(note = "use evaluate_workload(s, w, &EvalOptions::default().with_attribution(true))")]
pub fn evaluate_workload_attributed(
    s: &Synopsis,
    w: &Workload,
) -> (ErrorReport, AttributionReport) {
    let eval = evaluate_workload(s, w, &EvalOptions::default().with_attribution(true));
    (
        eval.report,
        eval.attribution.expect("attribution requested"),
    )
}

/// Attributed evaluation across `threads` workers — deprecated shim.
#[deprecated(
    note = "use evaluate_workload(s, w, &EvalOptions::default().with_threads(threads).with_attribution(true))"
)]
pub fn evaluate_workload_attributed_with(
    s: &Synopsis,
    w: &Workload,
    threads: usize,
) -> (ErrorReport, AttributionReport) {
    let eval = evaluate_workload(
        s,
        w,
        &EvalOptions::default()
            .with_threads(threads)
            .with_attribution(true),
    );
    (
        eval.report,
        eval.attribution.expect("attribution requested"),
    )
}

/// The attribution join behind [`evaluate_workload`]: aggregates errors
/// and joins each query's absolute error (against the workload's exact
/// counts) with the clusters its estimate flowed through — ranking the
/// clusters, and the value summaries stored there, by contributed
/// error. Runs in query order, so the report is bitwise identical to
/// the plain path.
fn attribute(
    s: &Synopsis,
    w: &Workload,
    traced: &[(f64, Trace)],
) -> (ErrorReport, AttributionReport) {
    let mut acc = ErrorAcc::default();
    let mut cluster_err: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
    let mut cluster_queries: BTreeMap<SynopsisNodeId, usize> = BTreeMap::new();
    let mut cluster_kinds: BTreeMap<SynopsisNodeId, BTreeSet<String>> = BTreeMap::new();
    let mut unattributed = 0.0;
    let mut records = Vec::with_capacity(w.queries.len());
    for (q, &(est, ref trace)) in w.queries.iter().zip(traced) {
        acc.add(q, est, w.sanity_bound);
        let abs_error = (q.true_count - est).abs();
        let (pops, _) = populations_from_trace(&q.query, trace, s.root());
        // Structural mass arriving at each embedding target, deduped the
        // same way the flow reconstruction dedupes replayed expansions.
        let mut probed: BTreeSet<SynopsisNodeId> = BTreeSet::new();
        for (_, span) in trace.by_name("estimate.vprobe") {
            let (Some(c), Some(kind)) = (
                span.attr("cluster").and_then(|a| a.as_u64()),
                span.attr("kind").and_then(|a| a.as_str()),
            ) else {
                continue;
            };
            probed.insert(c as usize);
            cluster_kinds
                .entry(c as usize)
                .or_default()
                .insert(kind.to_string());
        }
        let mut arriving: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
        let mut seen: HashSet<(usize, SynopsisNodeId, SynopsisNodeId)> = HashSet::new();
        for step in embed_steps(trace) {
            if !seen.insert((step.qnode, step.from, step.target)) {
                continue;
            }
            let Some(parent) = q.query.node(step.qnode).parent else {
                continue;
            };
            let flow = if q.query.node(parent).kind == NodeKind::Variable {
                pops.get(&parent).and_then(|p| p.get(&step.from)).copied()
            } else {
                None
            };
            if let Some(flow) = flow {
                *arriving.entry(step.target).or_insert(0.0) += flow * step.expected;
            }
        }
        // Prefer charging predicate-probed clusters; fall back to every
        // structural target when the query carries no predicates.
        let weights: Vec<(SynopsisNodeId, f64)> = {
            let probed_w: Vec<_> = arriving
                .iter()
                .filter(|(c, _)| probed.contains(c))
                .map(|(&c, &w)| (c, w))
                .collect();
            if probed_w.iter().any(|&(_, w)| w > 0.0) {
                probed_w
            } else {
                arriving.iter().map(|(&c, &w)| (c, w)).collect()
            }
        };
        let total_w: f64 = weights.iter().map(|&(_, w)| w).sum();
        let mut top_cluster = None;
        if total_w > 0.0 {
            let mut best = f64::NEG_INFINITY;
            for &(c, wgt) in &weights {
                if wgt <= 0.0 {
                    continue;
                }
                *cluster_err.entry(c).or_insert(0.0) += abs_error * wgt / total_w;
                *cluster_queries.entry(c).or_insert(0) += 1;
                if wgt > best {
                    best = wgt;
                    top_cluster = Some(c);
                }
            }
        } else {
            unattributed += abs_error;
        }
        records.push(QueryErrorRecord {
            query: q.query.to_string(),
            class: q.class,
            true_count: q.true_count,
            estimate: est,
            abs_error,
            top_cluster,
        });
    }
    let mut clusters: Vec<ClusterAttribution> = cluster_err
        .iter()
        .map(|(&cluster, &abs_error)| ClusterAttribution {
            cluster,
            label: s.label_str(cluster).to_string(),
            abs_error,
            queries: cluster_queries.get(&cluster).copied().unwrap_or(0),
            summary_kinds: cluster_kinds
                .get(&cluster)
                .map(|k| k.iter().cloned().collect())
                .unwrap_or_default(),
        })
        .collect();
    clusters.sort_by(|a, b| {
        b.abs_error
            .total_cmp(&a.abs_error)
            .then_with(|| a.cluster.cmp(&b.cluster))
    });
    records.sort_by(|a, b| b.abs_error.total_cmp(&a.abs_error));
    (
        acc.report(),
        AttributionReport {
            clusters,
            unattributed,
            queries: records,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::{workload, EvalIndex, WorkloadConfig};

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(100.0, 100.0, 10.0), 0.0);
        assert_eq!(relative_error(100.0, 50.0, 10.0), 0.5);
        // Sanity bound caps the denominator inflation for low counts.
        assert_eq!(relative_error(1.0, 11.0, 10.0), 1.0);
        assert_eq!(relative_error(0.0, 5.0, 10.0), 0.5);
    }

    #[test]
    fn reference_synopsis_scores_near_zero_on_structural_queries() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 60,
            seed: 31,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&d.tree);
        let cfg = WorkloadConfig {
            num_queries: 50,
            class_weights: [1.0, 0.0, 0.0, 0.0],
            ..WorkloadConfig::default()
        };
        let w = workload::generate_positive(&d.tree, &idx, &cfg);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert!(
            report.overall_rel < 1e-6,
            "reference must be lossless for structure: {}",
            report.overall_rel
        );
    }

    #[test]
    fn negative_workload_estimates_near_zero() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 60,
            seed: 32,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&d.tree);
        let cfg = WorkloadConfig {
            num_queries: 40,
            ..WorkloadConfig::default()
        };
        let w = workload::generate_negative(&d.tree, &idx, &cfg);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert!(
            report.avg_estimate < 0.5,
            "negative estimates should be near zero: {}",
            report.avg_estimate
        );
    }

    /// A one-cluster document plus a hand-built workload targeting it,
    /// so expected estimates are exact and edge cases are controllable.
    fn tiny_workload(
        counts_and_classes: &[(f64, QueryClass)],
        sanity_bound: f64,
    ) -> (Synopsis, Workload) {
        use xcluster_query::WorkloadQuery;
        let t = xcluster_xml::parse("<r><a/><a/><a/></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let mut terms = xcluster_xml::Interner::new();
        terms.intern("unused");
        let queries = counts_and_classes
            .iter()
            .map(|&(true_count, class)| WorkloadQuery {
                // Every query is //a, estimated exactly as 3.0.
                query: xcluster_query::parse_twig("//a", &terms).unwrap(),
                class,
                true_count,
            })
            .collect();
        (
            s,
            Workload {
                queries,
                sanity_bound,
            },
        )
    }

    #[test]
    fn empty_workload_reports_zeroes() {
        let (s, mut w) = tiny_workload(&[], 1.0);
        w.queries.clear();
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert_eq!(report.overall_rel, 0.0);
        assert_eq!(report.avg_estimate, 0.0);
        assert_eq!(report.class_rel, [None, None, None, None]);
        assert_eq!(report.low_count_abs, [None, None, None, None]);
    }

    #[test]
    fn class_indexing_routes_errors_to_the_right_slot() {
        // //a estimates 3.0 on the reference synopsis. True counts of 6
        // give rel error |6-3|/6 = 0.5 in each populated class.
        let (s, w) = tiny_workload(&[(6.0, QueryClass::Struct), (6.0, QueryClass::Text)], 1.0);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert_eq!(report.class_rel(QueryClass::Struct), Some(0.5));
        assert_eq!(report.class_rel(QueryClass::Text), Some(0.5));
        assert_eq!(report.class_rel(QueryClass::Numeric), None);
        assert_eq!(report.class_rel(QueryClass::String), None);
        assert!((report.overall_rel - 0.5).abs() < 1e-12);
        assert!((report.avg_estimate - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sanity_bound_caps_low_count_denominators() {
        // True count 1 vs estimate 3: unbounded rel error would be 2.0;
        // with sanity bound 10 the denominator is capped: 2/10 = 0.2.
        let (s, w) = tiny_workload(&[(1.0, QueryClass::Struct)], 10.0);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert!((report.overall_rel - 0.2).abs() < 1e-12);
        // The query is low-count (1 <= 10): absolute error 2.0.
        assert_eq!(report.low_count_abs(QueryClass::Struct), Some(2.0));
    }

    #[test]
    fn low_count_bucket_is_inclusive_at_the_bound() {
        // true_count == sanity_bound must count as low-count (ties are
        // common with integer counts in small workloads).
        let (s, w) = tiny_workload(&[(3.0, QueryClass::Numeric)], 3.0);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert_eq!(report.low_count_abs(QueryClass::Numeric), Some(0.0));
        // Above the bound: excluded from the low-count aggregate.
        let (s, w) = tiny_workload(&[(4.0, QueryClass::Numeric)], 3.0);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert_eq!(report.low_count_abs(QueryClass::Numeric), None);
    }

    #[test]
    fn zero_true_count_and_zero_bound_do_not_divide_by_zero() {
        let (s, w) = tiny_workload(&[(0.0, QueryClass::String)], 0.0);
        let report = evaluate_workload(&s, &w, &EvalOptions::default()).report;
        assert!(report.overall_rel.is_finite());
        // |0 - 3| / max(0, 0, MIN_POSITIVE) is astronomically large but
        // finite; the low-count absolute error is the estimate itself.
        assert_eq!(report.low_count_abs(QueryClass::String), Some(3.0));
    }

    #[test]
    fn report_class_accessors() {
        let report = ErrorReport {
            overall_rel: 0.1,
            class_rel: [Some(0.2), None, None, Some(0.4)],
            low_count_abs: [None, Some(1.5), None, None],
            avg_estimate: 3.0,
        };
        assert_eq!(report.class_rel(QueryClass::Struct), Some(0.2));
        assert_eq!(report.class_rel(QueryClass::Numeric), None);
        assert_eq!(report.class_rel(QueryClass::Text), Some(0.4));
        assert_eq!(report.low_count_abs(QueryClass::Numeric), Some(1.5));
    }
}
