//! Reference-synopsis construction (paper Section 4.3, "Reference
//! Synopsis Construction").
//!
//! The reference synopsis is a refinement of the lossless *count-stable*
//! summary: each cluster groups elements that (a) lie on the same label
//! path from the root (so every cluster has **exactly one incoming path**,
//! capturing path-to-value correlations), (b) share label *and* value type
//! (type-respecting), and (c) have the same number of children in every
//! other cluster (count stability, reached by iterated signature
//! refinement). Clusters on the configured value paths get detailed value
//! summaries; count stability makes every stored edge count exact, so the
//! reference synopsis is a lossless structural representation.

use crate::synopsis::{Synopsis, SynopsisNode};
use std::collections::{BTreeMap, HashMap};
use xcluster_summaries::summary::{DEFAULT_HISTOGRAM_BUCKETS, DEFAULT_PST_DEPTH};
use xcluster_summaries::{NumericKind, ValueSummary};
use xcluster_xml::{NodeId, Value, ValuePathSpec, ValueType, XmlTree};

/// Reference-synopsis parameters.
#[derive(Debug, Clone)]
pub struct ReferenceConfig {
    /// Value paths to summarize. `None` summarizes every typed cluster.
    pub value_paths: Option<Vec<ValuePathSpec>>,
    /// Bucket count of the detailed numeric histograms.
    pub histogram_buckets: usize,
    /// Substring-length bound of the detailed PSTs.
    pub pst_depth: usize,
    /// Per-cluster cap on detailed-summary bytes (strings and text get
    /// 4× this: substring and term distributions need more state than a
    /// bucketized histogram). The cap keeps reference construction and
    /// Δ evaluation tractable; the *accuracy* budget is `Bval`, which
    /// phase 2 allocates across clusters by marginal loss.
    pub max_summary_bytes: usize,
    /// Backend for `NUMERIC` summaries (histogram / wavelet / sample).
    pub numeric_kind: NumericKind,
}

impl Default for ReferenceConfig {
    fn default() -> Self {
        ReferenceConfig {
            value_paths: None,
            histogram_buckets: DEFAULT_HISTOGRAM_BUCKETS,
            pst_depth: DEFAULT_PST_DEPTH,
            max_summary_bytes: 1024,
            numeric_kind: NumericKind::default(),
        }
    }
}

/// Builds the reference synopsis of `tree`.
pub fn reference_synopsis(tree: &XmlTree, cfg: &ReferenceConfig) -> Synopsis {
    let partition = count_stable_partition(tree);
    materialize(tree, &partition, cfg)
}

/// The element partition underlying a reference synopsis.
#[derive(Debug)]
pub struct Partition {
    /// Cluster index of each element (indexed by `NodeId`).
    pub cluster_of: Vec<u32>,
    /// Number of clusters.
    pub num_clusters: usize,
}

/// Computes the type-respecting, single-incoming-path, count-stable
/// element partition.
pub fn count_stable_partition(tree: &XmlTree) -> Partition {
    let n = tree.len();
    let mut cluster_of = vec![0u32; n];
    // Phase 1: label-path + value-type partition. Node ids are created
    // parents-first, so a single forward pass resolves parent clusters.
    let mut keys: HashMap<(u32, u32, ValueType), u32> = HashMap::new();
    let mut num = 1u32; // cluster 0 = root
    for id in 1..n {
        let node = NodeId(id as u32);
        let parent = tree.parent(node).expect("non-root");
        let key = (
            cluster_of[parent.index()],
            tree.label(node).0,
            tree.value_type(node),
        );
        let c = *keys.entry(key).or_insert_with(|| {
            let c = num;
            num += 1;
            c
        });
        cluster_of[id] = c;
    }
    // Phase 2: refine until both count-stable (same number of children in
    // every other cluster — forward) and single-incoming-path (same parent
    // cluster — backward; splits of a parent propagate into its subtree,
    // so the final cluster graph of a tree document is itself a tree —
    // cf. the paper's Table 1, where IMDB has 2037 value clusters over
    // only 7 value paths).
    // (old cluster, parent cluster, child-count signature) → new cluster.
    type SigKey = (u32, u32, Vec<(u32, u32)>);
    loop {
        let mut sigs: HashMap<SigKey, u32> = HashMap::new();
        let mut next = vec![0u32; n];
        let mut new_num = 0u32;
        for id in 0..n {
            let node = NodeId(id as u32);
            let mut sig: Vec<(u32, u32)> = Vec::new();
            for c in tree.children(node) {
                let cc = cluster_of[c.index()];
                match sig.iter_mut().find(|(k, _)| *k == cc) {
                    Some((_, cnt)) => *cnt += 1,
                    None => sig.push((cc, 1)),
                }
            }
            sig.sort_unstable();
            let parent_cluster = tree
                .parent(node)
                .map_or(u32::MAX, |p| cluster_of[p.index()]);
            let key = (cluster_of[id], parent_cluster, sig);
            let c = *sigs.entry(key).or_insert_with(|| {
                let c = new_num;
                new_num += 1;
                c
            });
            next[id] = c;
        }
        // Refinement is monotone: an unchanged cluster count ⇒ stable.
        let stable = new_num == num;
        cluster_of = next;
        num = new_num;
        if stable {
            break;
        }
    }
    Partition {
        cluster_of,
        num_clusters: num as usize,
    }
}

fn materialize(tree: &XmlTree, partition: &Partition, cfg: &ReferenceConfig) -> Synopsis {
    let k = partition.num_clusters;
    let root_cluster = partition.cluster_of[tree.root().index()] as usize;
    // Per-cluster aggregates.
    let mut counts = vec![0f64; k];
    let mut label = vec![None::<xcluster_xml::Symbol>; k];
    let mut vtype = vec![ValueType::None; k];
    let mut representative = vec![None::<NodeId>; k];
    // BTreeMap: edge insertion order below must not depend on HashMap's
    // per-process seed, or identical builds diverge run to run.
    let mut edge_totals: Vec<BTreeMap<usize, f64>> = vec![BTreeMap::new(); k];
    let mut values: Vec<Vec<&Value>> = vec![Vec::new(); k];
    for id in tree.all_nodes() {
        let c = partition.cluster_of[id.index()] as usize;
        counts[c] += 1.0;
        label[c] = Some(tree.label(id));
        vtype[c] = tree.value_type(id);
        representative[c].get_or_insert(id);
        for child in tree.children(id) {
            let cc = partition.cluster_of[child.index()] as usize;
            *edge_totals[c].entry(cc).or_insert(0.0) += 1.0;
        }
        if tree.value_type(id) != ValueType::None {
            values[c].push(tree.value(id));
        }
    }
    // Which clusters get value summaries.
    let summarize: Vec<bool> = (0..k)
        .map(|c| {
            if vtype[c] == ValueType::None {
                return false;
            }
            match &cfg.value_paths {
                None => true,
                Some(specs) => {
                    let rep = representative[c].expect("non-empty cluster");
                    let path = tree.label_path(rep);
                    let labels: Vec<&str> =
                        path.iter().map(|&s| tree.labels().resolve(s)).collect();
                    specs
                        .iter()
                        .any(|s| s.value_type == vtype[c] && s.matches(&labels))
                }
            }
        })
        .collect();

    let mut syn = Synopsis::new(
        tree.labels().clone(),
        label[root_cluster].expect("root cluster"),
        tree.max_depth(),
    );
    syn.set_terms(tree.terms().clone());
    // Cluster index → synopsis node id (root pre-created as node 0).
    let mut node_of = vec![usize::MAX; k];
    node_of[root_cluster] = syn.root();
    for c in 0..k {
        if c == root_cluster {
            continue;
        }
        node_of[c] = syn.push_node(SynopsisNode {
            label: label[c].expect("non-empty cluster"),
            vtype: vtype[c],
            count: counts[c],
            children: Vec::new(),
            parents: Vec::new(),
            vsumm: None,
            alive: true,
            version: 0,
        });
    }
    for c in 0..k {
        for (&cc, &total) in &edge_totals[c] {
            syn.add_edge(node_of[c], node_of[cc], total / counts[c]);
        }
        if summarize[c] {
            let vs = ValueSummary::build_full(
                &values[c],
                vtype[c],
                cfg.histogram_buckets,
                cfg.pst_depth,
                cfg.numeric_kind,
            )
            .map(|mut vs| {
                // Substring tries and term centroids carry far more state
                // than a bucketized histogram; give them a larger detailed
                // cap (PSTs in particular need 2–3-gram context to keep
                // the Markovian fallback honest).
                let cap = match vtype[c] {
                    ValueType::String | ValueType::Text => cfg.max_summary_bytes * 4,
                    _ => cfg.max_summary_bytes,
                };
                if vs.size_bytes() > cap {
                    vs.compress_to_bytes(cap);
                }
                vs
            });
            syn.node_mut(node_of[c]).vsumm = vs;
        }
    }
    debug_assert_eq!(syn.check_consistency(), Ok(()));
    syn
}

/// Associates each synopsis node of a *reference* synopsis with the
/// elements in its extent — used by tests and the global-metric baseline.
pub fn extents(tree: &XmlTree, partition: &Partition) -> Vec<Vec<NodeId>> {
    let mut ext = vec![Vec::new(); partition.num_clusters];
    for id in tree.all_nodes() {
        ext[partition.cluster_of[id.index()] as usize].push(id);
    }
    ext
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcluster_xml::parse;

    fn doc(xml: &str) -> XmlTree {
        parse(xml).unwrap()
    }

    #[test]
    fn distinct_paths_get_distinct_clusters() {
        let t = doc("<r><a><x>1</x></a><b><x>2</x></b></r>");
        let p = count_stable_partition(&t);
        let nodes: Vec<NodeId> = t.all_nodes().collect();
        // r, a, b, x-under-a, x-under-b all distinct: 5 clusters.
        assert_eq!(p.num_clusters, 5);
        let xa = nodes
            .iter()
            .find(|&&n| t.label_str(n) == "x" && t.label_str(t.parent(n).unwrap()) == "a")
            .unwrap();
        let xb = nodes
            .iter()
            .find(|&&n| t.label_str(n) == "x" && t.label_str(t.parent(n).unwrap()) == "b")
            .unwrap();
        assert_ne!(p.cluster_of[xa.index()], p.cluster_of[xb.index()]);
    }

    #[test]
    fn identical_structures_share_clusters() {
        let t = doc("<r><a><x>1</x></a><a><x>2</x></a></r>");
        let p = count_stable_partition(&t);
        assert_eq!(p.num_clusters, 3); // r, a, x
    }

    #[test]
    fn count_stability_splits_differing_fanout() {
        // Both <a>s on the same path, but one has 1 x-child, other has 2.
        let t = doc("<r><a><x>1</x></a><a><x>2</x><x>3</x></a></r>");
        let p = count_stable_partition(&t);
        let a_nodes: Vec<NodeId> = t.all_nodes().filter(|&n| t.label_str(n) == "a").collect();
        assert_ne!(
            p.cluster_of[a_nodes[0].index()],
            p.cluster_of[a_nodes[1].index()],
            "count-stability must separate a-nodes with different fan-out"
        );
    }

    #[test]
    fn type_respecting_split() {
        // Same path "r/v", but one numeric and one string value.
        let t = doc("<r><v>123</v><v>abc</v></r>");
        let p = count_stable_partition(&t);
        let v: Vec<NodeId> = t.all_nodes().filter(|&n| t.label_str(n) == "v").collect();
        assert_ne!(p.cluster_of[v[0].index()], p.cluster_of[v[1].index()]);
    }

    #[test]
    fn refinement_propagates_upward() {
        // The a-parents differ only through their grandchildren.
        let t = doc("<r><a><x><y>1</y></x></a><a><x><y>1</y><y>2</y></x></a></r>");
        let p = count_stable_partition(&t);
        let a: Vec<NodeId> = t.all_nodes().filter(|&n| t.label_str(n) == "a").collect();
        assert_ne!(
            p.cluster_of[a[0].index()],
            p.cluster_of[a[1].index()],
            "stability must propagate through x to a"
        );
    }

    #[test]
    fn reference_edge_counts_are_exact() {
        let t = doc("<r><a><x>1</x></a><a><x>2</x></a><a><x>3</x></a></r>");
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        s.check_consistency().unwrap();
        // root -> a with count 3, a -> x with count 1.
        let root = s.root();
        let (a, c) = s.node(root).children[0];
        assert_eq!(c, 3.0);
        assert_eq!(s.node(a).count, 3.0);
        let (x, cx) = s.node(a).children[0];
        assert_eq!(cx, 1.0);
        assert_eq!(s.node(x).count, 3.0);
        assert_eq!(s.node(x).vtype, ValueType::Numeric);
    }

    #[test]
    fn value_summaries_attached_by_default() {
        let t = doc("<r><y>1990</y><y>2000</y></r>");
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        assert_eq!(s.num_value_nodes(), 1);
        let y = s.live_nodes().find(|&i| s.label_str(i) == "y").unwrap();
        let vs = s.node(y).vsumm.as_ref().unwrap();
        let sel = vs.selectivity(&xcluster_summaries::ValuePredicate::Range { lo: 1990, hi: 1990 });
        assert!(sel > 0.0);
    }

    #[test]
    fn value_paths_restrict_summaries() {
        let t = doc("<r><a><y>1</y></a><b><y>2</y></b></r>");
        let cfg = ReferenceConfig {
            value_paths: Some(vec![ValuePathSpec::new(&["a", "y"], ValueType::Numeric)]),
            ..ReferenceConfig::default()
        };
        let s = reference_synopsis(&t, &cfg);
        assert_eq!(s.num_value_nodes(), 1);
        let with = s.live_nodes().find(|&i| s.node(i).vsumm.is_some()).unwrap();
        assert_eq!(s.label_str(with), "y");
    }

    #[test]
    fn reference_counts_total_elements() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 100,
            seed: 4,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        s.check_consistency().unwrap();
        let total: f64 = s.live_nodes().map(|i| s.node(i).count).sum();
        assert_eq!(total, d.tree.len() as f64);
    }

    #[test]
    fn recursive_document_terminates() {
        let t = doc("<r><p><l><p><l><t>deep</t></l></p></l></p></r>");
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        s.check_consistency().unwrap();
        assert!(s.num_nodes() >= 6);
        assert_eq!(s.max_depth(), t.max_depth());
    }

    #[test]
    fn extents_cover_all_elements() {
        let t = doc("<r><a><x>1</x></a><a><x>2</x></a></r>");
        let p = count_stable_partition(&t);
        let e = extents(&t, &p);
        let covered: usize = e.iter().map(|v| v.len()).sum();
        assert_eq!(covered, t.len());
    }
}
