//! Selectivity estimation over XCluster synopses (paper Section 5).
//!
//! Estimation maps the twig query into the synopsis graph (*query
//! embeddings*) and combines stored edge counts with predicate
//! selectivities under the generalized **Path–Value Independence**
//! assumption: the selectivity of a simple synopsis path `u[p]/c` is
//! `|u| · σ_p(u) · count(u, c)`, with `σ_p(u)` estimated from
//! `vsumm(u)`. The total estimate sums the selectivities of all
//! embeddings; by distributivity over independent twig branches this is
//! computed as a product of per-branch expected counts, exactly as in the
//! paper's Figure 7 walk-through.
//!
//! Descendant (`//`) steps expand into all label-matching synopsis paths
//! by a depth-bounded dynamic program over the graph (bounded by the
//! source document's depth — merged synopses of recursive data may
//! contain cycles).

use crate::plan::{compile, run_plan, Plan, ReachCache};
use crate::synopsis::{Synopsis, SynopsisNodeId};
use std::collections::BTreeMap;
use std::sync::Arc;
use xcluster_obs::trace::{self, Trace};
use xcluster_obs::{SpanTimer, TraceBuilder};
use xcluster_query::{Axis, LabelTest, NodeKind, TwigQuery};
use xcluster_summaries::{ValuePredicate, ValueSummary};
use xcluster_xml::ValueType;

/// Registry handles for the estimation instrumentation (`estimate.*`):
/// per-query latency, clusters visited during embedding, and value-
/// summary probes broken down by summary kind. Shared with the compiled
/// plan interpreter (`crate::plan`), which keeps these counters in exact
/// parity with the reference interpreter.
pub(crate) mod stats {
    use std::sync::{Arc, LazyLock};
    use xcluster_obs::{counter, histogram, Counter, Histogram};

    pub static QUERIES: LazyLock<Arc<Counter>> = LazyLock::new(|| counter("estimate.queries"));
    pub static QUERY_NS: LazyLock<Arc<Histogram>> =
        LazyLock::new(|| histogram("estimate.query_ns"));
    pub static CLUSTERS_VISITED: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.clusters_visited"));
    pub static VPROBE_HISTOGRAM: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.vprobe_histogram"));
    pub static VPROBE_PST: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.vprobe_pst"));
    pub static VPROBE_TERM: LazyLock<Arc<Counter>> =
        LazyLock::new(|| counter("estimate.vprobe_term"));
}

/// Estimates the selectivity (expected binding-tuple count) of `query`.
///
/// When trace capture is on ([`xcluster_obs::trace::capture_enabled`]),
/// every call also records a full [`Trace`] of the embedding walk into
/// the global ring buffer; otherwise the traced bookkeeping is skipped
/// entirely and only the aggregate counters above are touched.
pub fn estimate(s: &Synopsis, query: &TwigQuery) -> f64 {
    if trace::capture_enabled() {
        let (value, t) = run(s, query, true);
        trace::record(t.expect("tracing was requested"));
        value
    } else {
        run(s, query, false).0
    }
}

/// Estimates `query` and returns the trace of the embedding walk: one
/// `estimate.step` span per (query node × source cluster) expansion,
/// one `estimate.embed` span per candidate target cluster (attributes
/// `qnode`, `from`, `cluster`, `expected`, `sigma`, `contribution`),
/// and one `estimate.vprobe` span per value-summary probe (`kind`,
/// `sigma`). The estimate is bitwise identical to [`estimate`] on the
/// same inputs — tracing only adds bookkeeping, never reorders the
/// floating-point work.
pub fn estimate_traced(s: &Synopsis, query: &TwigQuery) -> (f64, Trace) {
    let (value, t) = run(s, query, true);
    (value, t.expect("tracing was requested"))
}

/// The zero-product early-break policy, shared by the reference
/// interpreter and the compiled-plan interpreter (`crate::plan`) so the
/// two engines cannot drift. Untraced, a zero accumulator is final —
/// stop expanding. Traced, keep walking so the trace covers every
/// branch; the extra factors multiply into an exact 0.0 and cannot
/// change the result.
pub(crate) fn keep_expanding(acc: f64, traced: bool) -> bool {
    acc != 0.0 || traced
}

fn run(s: &Synopsis, query: &TwigQuery, traced: bool) -> (f64, Option<Trace>) {
    debug_assert!(query.filters_are_existential());
    stats::QUERIES.inc();
    let _span = SpanTimer::new("estimate.query", &stats::QUERY_NS);
    let tb = traced.then(|| {
        let mut tb = TraceBuilder::new("estimate.query");
        tb.attr_str(tb.root(), "query", query.to_string());
        tb
    });
    let mut est = Walker { s, query, tb };
    let mut product = 1.0;
    for &c in &query.node(query.root()).children {
        product *= est.child_factor(c, s.root());
        if !keep_expanding(product, est.tb.is_some()) {
            break;
        }
    }
    let trace = est.tb.take().map(|mut tb| {
        tb.attr_f64(tb.root(), "result", product);
        tb.finish()
    });
    (product, trace)
}

/// The reference embedding walk. Kept interpreter-pure (no caches, no
/// compiled state) so it can referee the compiled plan path in the
/// differential tests.
struct Walker<'a> {
    s: &'a Synopsis,
    query: &'a TwigQuery,
    /// Trace under construction, when the caller asked for one.
    tb: Option<TraceBuilder>,
}

impl Walker<'_> {
    /// Expected contribution of query child `q` per element of the
    /// cluster `sn` its parent is embedded at: summed over all candidate
    /// target clusters (embeddings), each weighted by the expected number
    /// of reached elements.
    fn child_factor(&mut self, q: usize, sn: SynopsisNodeId) -> f64 {
        let query = self.query;
        let qnode = query.node(q);
        let reached = self.reach(sn, qnode.axis, &qnode.label);
        stats::CLUSTERS_VISITED.add(reached.len() as u64);
        let step = self.tb.as_mut().map(|tb| {
            let id = tb.start("estimate.step");
            tb.attr_u64(id, "qnode", q as u64);
            tb.attr_str(
                id,
                "kind",
                match qnode.kind {
                    NodeKind::Variable => "variable",
                    NodeKind::Filter => "filter",
                },
            );
            tb.attr_str(
                id,
                "axis",
                match qnode.axis {
                    Axis::Child => "child",
                    Axis::Descendant => "descendant",
                },
            );
            tb.attr_u64(id, "from", sn as u64);
            tb.attr_u64(id, "targets", reached.len() as u64);
            id
        });
        let factor = match qnode.kind {
            NodeKind::Variable => {
                let mut sum = 0.0;
                for (target, expected) in reached {
                    let embed = self.start_embed(q, sn, target, expected);
                    let sigma = self.predicate_selectivity(q, target);
                    if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
                        tb.attr_f64(id, "sigma", sigma);
                    }
                    if sigma == 0.0 {
                        self.end_embed(embed, 0.0);
                        continue;
                    }
                    let mut sub = expected * sigma;
                    for &c in &qnode.children {
                        sub *= self.child_factor(c, target);
                        if !keep_expanding(sub, self.tb.is_some()) {
                            break;
                        }
                    }
                    self.end_embed(embed, sub);
                    sum += sub;
                }
                sum
            }
            NodeKind::Filter => {
                // Existential branch: the expected count of qualifying
                // matches, capped at 1 as a qualification probability.
                let mut expected_matches = 0.0;
                for (target, expected) in reached {
                    let embed = self.start_embed(q, sn, target, expected);
                    let mut sat = self.predicate_selectivity(q, target);
                    if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
                        tb.attr_f64(id, "sigma", sat);
                    }
                    for &c in &qnode.children {
                        if !keep_expanding(sat, self.tb.is_some()) {
                            break;
                        }
                        sat *= self.child_factor(c, target).min(1.0);
                    }
                    self.end_embed(embed, expected * sat);
                    expected_matches += expected * sat;
                }
                expected_matches.min(1.0)
            }
        };
        if let (Some(tb), Some(id)) = (self.tb.as_mut(), step) {
            tb.attr_f64(id, "factor", factor);
            tb.end(id);
        }
        factor
    }

    /// Opens an `estimate.embed` span for one candidate target cluster.
    fn start_embed(
        &mut self,
        q: usize,
        from: SynopsisNodeId,
        target: SynopsisNodeId,
        expected: f64,
    ) -> Option<usize> {
        self.tb.as_ref()?;
        let label = self.s.label_str(target).to_string();
        let tb = self.tb.as_mut().expect("checked above");
        let id = tb.start("estimate.embed");
        tb.attr_u64(id, "qnode", q as u64);
        tb.attr_u64(id, "from", from as u64);
        tb.attr_u64(id, "cluster", target as u64);
        tb.attr_str(id, "label", label);
        tb.attr_f64(id, "expected", expected);
        Some(id)
    }

    /// Closes an `estimate.embed` span, recording the per-parent-element
    /// contribution of this embedding (expected × σ × child factors).
    fn end_embed(&mut self, embed: Option<usize>, contribution: f64) {
        if let (Some(tb), Some(id)) = (self.tb.as_mut(), embed) {
            tb.attr_f64(id, "contribution", contribution);
            tb.end(id);
        }
    }

    /// Expected number of elements of each label-matching cluster reached
    /// per element of `from` along `axis`, in ascending cluster-id order
    /// (a fixed iteration order keeps float accumulation — and therefore
    /// the whole estimate — deterministic across runs).
    fn reach(
        &self,
        from: SynopsisNodeId,
        axis: Axis,
        label: &LabelTest,
    ) -> Vec<(SynopsisNodeId, f64)> {
        match axis {
            Axis::Child => self
                .s
                .node(from)
                .children
                .iter()
                .filter(|&&(t, _)| self.label_matches(label, t))
                .map(|&(t, c)| (t, c))
                .collect(),
            Axis::Descendant => {
                // Depth-bounded DP: frontier[n] = expected elements of
                // cluster n at the current depth per source element.
                let mut reach: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
                let mut frontier: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
                frontier.insert(from, 1.0);
                for _ in 0..self.s.max_depth() {
                    let mut next: BTreeMap<SynopsisNodeId, f64> = BTreeMap::new();
                    for (&n, &w) in &frontier {
                        for &(t, c) in &self.s.node(n).children {
                            *next.entry(t).or_insert(0.0) += w * c;
                        }
                    }
                    if next.is_empty() {
                        break;
                    }
                    for (&t, &w) in &next {
                        if self.label_matches(label, t) {
                            *reach.entry(t).or_insert(0.0) += w;
                        }
                    }
                    frontier = next;
                }
                reach.into_iter().collect()
            }
        }
    }

    fn label_matches(&self, label: &LabelTest, node: SynopsisNodeId) -> bool {
        match label {
            LabelTest::Wildcard => true,
            LabelTest::Tag(t) => self.s.label_str(node) == t,
        }
    }

    /// `σ_p(u)`: the predicate selectivity at a cluster. Predicates whose
    /// class cannot match the cluster's value type are 0; clusters of the
    /// right type without a stored summary contribute no information
    /// (σ = 1).
    fn predicate_selectivity(&mut self, q: usize, target: SynopsisNodeId) -> f64 {
        let Some(pred) = &self.query.node(q).predicate else {
            return 1.0;
        };
        let node = self.s.node(target);
        let type_ok = matches!(
            (pred, node.vtype),
            (ValuePredicate::Range { .. }, ValueType::Numeric)
                | (ValuePredicate::Contains { .. }, ValueType::String)
                | (ValuePredicate::FtContains { .. }, ValueType::Text)
                | (ValuePredicate::SimilarTo { .. }, ValueType::Text)
        );
        let (kind, sigma) = if !type_ok {
            ("type_mismatch", 0.0)
        } else {
            match &node.vsumm {
                Some(vs) => {
                    let kind = match vs {
                        ValueSummary::Numeric(_) => "histogram",
                        ValueSummary::NumericWavelet(_) => "wavelet",
                        ValueSummary::NumericSample(_) => "sample",
                        ValueSummary::String(_) => "pst",
                        ValueSummary::Text(_) => "term",
                    };
                    match vs {
                        ValueSummary::Numeric(_)
                        | ValueSummary::NumericWavelet(_)
                        | ValueSummary::NumericSample(_) => stats::VPROBE_HISTOGRAM.inc(),
                        ValueSummary::String(_) => stats::VPROBE_PST.inc(),
                        ValueSummary::Text(_) => stats::VPROBE_TERM.inc(),
                    }
                    (kind, vs.selectivity(pred))
                }
                None => ("unsummarized", 1.0),
            }
        };
        if let Some(tb) = self.tb.as_mut() {
            let id = tb.start("estimate.vprobe");
            tb.attr_u64(id, "cluster", target as u64);
            tb.attr_str(id, "kind", kind);
            tb.attr_f64(id, "sigma", sigma);
            tb.end(id);
        }
        sigma
    }
}

/// A reusable estimation session over one synopsis — the unified entry
/// point behind which `estimate` / `estimate_traced` /
/// `estimate_batch{,_by,_traced_by}` collapse.
///
/// The session owns the plan/reach caches ([`ReachCache`]): queries are
/// compiled once ([`crate::plan::compile`]) and executed by the plan
/// interpreter, which memoizes descendant-reachability DPs and value
/// probes across queries. Every estimate is **bitwise identical** to the
/// reference interpreter ([`estimate`]) at any thread count, cache-warm
/// or cache-cold (`tests/plan_diff.rs` is the referee).
///
/// Because the session borrows the synopsis, the borrow checker
/// guarantees the cache can never survive a rebuild within one session.
/// Long-lived holders that re-create sessions per request (the serving
/// layer) share one cache across sessions via [`Estimator::with_cache`]
/// and build a fresh cache whenever they load a new synopsis.
///
/// ```
/// use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
/// use xcluster_core::Estimator;
/// use xcluster_query::parse_twig;
/// use xcluster_xml::parse;
///
/// let doc = parse("<r><a><x>1</x></a><a><x>2</x></a></r>").unwrap();
/// let s = reference_synopsis(&doc, &ReferenceConfig::default());
/// let est = Estimator::new(&s).with_threads(2);
/// let q = parse_twig("//a/x", doc.terms()).unwrap();
/// assert_eq!(est.estimate(&q), 2.0);
/// let batch = est.estimate_batch(&[q.clone(), q]);
/// assert_eq!(batch, vec![2.0, 2.0]);
/// ```
pub struct Estimator<'s> {
    s: &'s Synopsis,
    threads: usize,
    cache: Arc<ReachCache>,
}

impl<'s> Estimator<'s> {
    /// A session over `s` with a fresh cache, running single-threaded.
    pub fn new(s: &'s Synopsis) -> Estimator<'s> {
        Estimator {
            s,
            threads: 1,
            cache: Arc::new(ReachCache::new()),
        }
    }

    /// Sets the worker count for the batch entry points (`0` = available
    /// parallelism). Thread count is unobservable in the results: shards
    /// share the cache read-only-in-effect and every estimate stays
    /// bitwise equal to a single-threaded run.
    pub fn with_threads(mut self, threads: usize) -> Estimator<'s> {
        self.threads = threads;
        self
    }

    /// Shares an existing cache (e.g. the serving layer's per-loaded-
    /// synopsis cache) instead of a fresh one. The cache must have been
    /// used only with this synopsis; [`ReachCache`] panics otherwise.
    pub fn with_cache(mut self, cache: Arc<ReachCache>) -> Estimator<'s> {
        self.cache = cache;
        self
    }

    /// The synopsis this session estimates over.
    pub fn synopsis(&self) -> &'s Synopsis {
        self.s
    }

    /// The resolved worker count knob (as configured, `0` = auto).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The session's plan/reach cache (shared handle).
    pub fn cache(&self) -> Arc<ReachCache> {
        Arc::clone(&self.cache)
    }

    /// Compiles `query` against the session's synopsis. Useful when one
    /// plan will be executed many times.
    pub fn compile(&self, query: &TwigQuery) -> Plan {
        compile(self.s, query)
    }

    /// Estimates one query through the compiled-plan path. Like
    /// [`estimate`], records a trace into the global ring buffer when
    /// capture is enabled.
    pub fn estimate(&self, query: &TwigQuery) -> f64 {
        self.estimate_plan(&self.compile(query))
    }

    /// Executes an already-compiled plan (see [`Estimator::compile`]).
    pub fn estimate_plan(&self, plan: &Plan) -> f64 {
        if trace::capture_enabled() {
            let (value, t) = run_plan(self.s, plan, &self.cache, true);
            trace::record(t.expect("tracing was requested"));
            value
        } else {
            run_plan(self.s, plan, &self.cache, false).0
        }
    }

    /// Estimates one query and returns the trace of the embedding walk —
    /// span-for-span identical to [`estimate_traced`].
    pub fn estimate_traced(&self, query: &TwigQuery) -> (f64, Trace) {
        self.estimate_plan_traced(&self.compile(query))
    }

    /// Traced execution of an already-compiled plan.
    pub fn estimate_plan_traced(&self, plan: &Plan) -> (f64, Trace) {
        let (value, t) = run_plan(self.s, plan, &self.cache, true);
        (value, t.expect("tracing was requested"))
    }

    /// Estimates every query, sharded across the session's workers,
    /// returning estimates in query order. The whole batch is compiled
    /// up front on the calling thread; shards share the session cache.
    pub fn estimate_batch(&self, queries: &[TwigQuery]) -> Vec<f64> {
        self.estimate_batch_by(queries, |q| q)
    }

    /// [`Estimator::estimate_batch`] over any container of queries, via
    /// an accessor — lets workload evaluation shard `&[WorkloadQuery]`
    /// without cloning every twig.
    pub fn estimate_batch_by<T, G>(&self, items: &[T], get: G) -> Vec<f64>
    where
        T: Sync,
        G: Fn(&T) -> &TwigQuery + Sync,
    {
        let plans: Vec<Plan> = items.iter().map(|i| self.compile(get(i))).collect();
        crate::par::run_shards(&plans, self.threads, |p| self.estimate_plan(p))
    }

    /// Traced batch estimation: each query additionally returns the
    /// trace of its embedding walk. Used by attributed workload
    /// evaluation.
    pub fn estimate_batch_traced_by<T, G>(&self, items: &[T], get: G) -> Vec<(f64, Trace)>
    where
        T: Sync,
        G: Fn(&T) -> &TwigQuery + Sync,
    {
        let plans: Vec<Plan> = items.iter().map(|i| self.compile(get(i))).collect();
        crate::par::run_shards(&plans, self.threads, |p| self.estimate_plan_traced(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_synopsis, ReferenceConfig};
    use xcluster_query::{evaluate, parse_twig, EvalIndex};
    use xcluster_xml::{parse, Interner, XmlTree};

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// On the lossless reference synopsis, purely structural estimates
    /// must be exact.
    fn check_exact(tree: &XmlTree, queries: &[&str]) {
        let s = reference_synopsis(tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(tree);
        for q in queries {
            let twig = parse_twig(q, tree.terms()).unwrap();
            let est = estimate(&s, &twig);
            let truth = evaluate(&twig, tree, &idx);
            close(est, truth);
        }
    }

    #[test]
    fn structural_estimates_exact_on_reference() {
        let t = parse("<r><a><x>1</x></a><a><x>2</x><x>3</x></a><b><x>4</x></b></r>").unwrap();
        check_exact(
            &t,
            &[
                "//a",
                "//x",
                "/a/x",
                "//b/x",
                "/a",
                "//*",
                "/a{/x}",
                "//a{/x}{/x}",
            ],
        );
    }

    #[test]
    fn descendant_axis_exact_on_reference() {
        let t = parse("<r><a><b><c></c></b></a><a><b><c></c><c></c></b></a></r>").unwrap();
        check_exact(&t, &["//c", "/a//c", "//b/c", "//a//c"]);
    }

    #[test]
    fn numeric_predicates_exact_on_reference_boundaries() {
        // One y-cluster with values 1990,1990,2000,2010: equi-depth with
        // enough buckets keeps point estimates exact at stored values.
        let t = parse(
            "<r><p><y>1990</y></p><p><y>1990</y></p><p><y>2000</y></p><p><y>2010</y></p></r>",
        )
        .unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let idx = EvalIndex::build(&t);
        // All p's share one cluster (identical structure), y's share one.
        let q = parse_twig("//y[in 0..3000]", t.terms()).unwrap();
        close(estimate(&s, &q), evaluate(&q, &t, &idx));
        let q = parse_twig("//p[y>1995]", t.terms()).unwrap();
        let est = estimate(&s, &q);
        let truth = evaluate(&q, &t, &idx);
        assert!((est - truth).abs() <= 0.5, "{est} vs {truth}");
    }

    #[test]
    fn string_predicates_on_reference() {
        let t = parse("<r><n>alpha</n><n>alpine</n><n>beta</n><n>gamma</n></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//n[contains(alp)]", t.terms()).unwrap();
        close(estimate(&s, &q), 2.0);
        let q = parse_twig("//n[contains(zeta)]", t.terms()).unwrap();
        close(estimate(&s, &q), 0.0);
    }

    #[test]
    fn text_predicates_on_reference() {
        let t = parse("<r><d>xml tree synopsis model</d><d>relational query plan cost</d></r>")
            .unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//d[ftcontains(xml)]", t.terms()).unwrap();
        close(estimate(&s, &q), 1.0);
        let q = parse_twig("//d[ftcontains(xml, synopsis)]", t.terms()).unwrap();
        // Independence across terms: 0.5 * 0.5 * 2 texts = 0.5.
        close(estimate(&s, &q), 0.5);
        let q = parse_twig("//d[ftcontains(nosuchterm)]", t.terms()).unwrap();
        close(estimate(&s, &q), 0.0);
    }

    #[test]
    fn figure7_walkthrough() {
        // Reconstructs the paper's Figure 7 example synopsis and checks
        // the published estimate of 500 binding tuples.
        use crate::synopsis::SynopsisNode;
        use xcluster_xml::{Interner, ValueType};
        let mut labels = Interner::new();
        let rl = labels.intern("R");
        let al = labels.intern("A");
        let bl = labels.intern("B");
        let dal = labels.intern("Da");
        let dbl = labels.intern("Db");
        let cl = labels.intern("C");
        let eal = labels.intern("Ea");
        let ebl = labels.intern("Eb");
        let mut s = Synopsis::new(labels, rl, 6);
        let mk = |s: &mut Synopsis, l, count| {
            s.push_node(SynopsisNode {
                label: l,
                vtype: ValueType::None,
                count,
                children: Vec::new(),
                parents: Vec::new(),
                vsumm: None,
                alive: true,
                version: 0,
            })
        };
        let a = mk(&mut s, al, 10.0);
        let b = mk(&mut s, bl, 50.0);
        let da = mk(&mut s, dal, 50.0);
        let db = mk(&mut s, dbl, 30.0);
        let c = mk(&mut s, cl, 250.0);
        let ea = mk(&mut s, eal, 100.0);
        let eb = mk(&mut s, ebl, 120.0);
        s.add_edge(0, a, 10.0);
        s.add_edge(a, b, 5.0);
        s.add_edge(a, da, 5.0);
        s.add_edge(b, c, 5.0);
        s.add_edge(da, ea, 2.0);
        s.add_edge(da, db, 3.0);
        s.add_edge(db, eb, 4.0);
        // Query //A { /B/C[p] } { //Ea } with σ_C(p) = 0.1 modeled by a
        // numeric summary where 10% of values fall in [0, 9].
        let vals: Vec<xcluster_xml::Value> = (0..250)
            .map(|i| xcluster_xml::Value::Numeric(if i < 25 { 5 } else { 100 }))
            .collect();
        let refs: Vec<&xcluster_xml::Value> = vals.iter().collect();
        s.node_mut(c).vtype = ValueType::Numeric;
        s.node_mut(c).vsumm = xcluster_summaries::ValueSummary::build(&refs, ValueType::Numeric);
        let mut terms = Interner::new();
        terms.intern("unused");
        let q = parse_twig("//A{/B/C[<9]}{//Ea}", &terms).unwrap();
        let est = estimate(&s, &q);
        // Per A: 5 * 5 * 0.1 = 2.5 C's ... the paper rounds σ to exactly
        // 0.1: per-A C count = 2.5; Ea count = 5*2 = 10; hmm the paper's
        // numbers: count(A,B)*count(B,C)*σ = 10*5*0.1 = 5 uses
        // count(A,B) = 10. Our graph has count(A,B) = 5, giving
        // 5*5*0.1 = 2.5 C's and 10 Ea's per A → 25 tuples per A ×10 A's.
        close(est, 250.0);
    }

    #[test]
    fn estimates_zero_for_absent_labels() {
        let t = parse("<r><a></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let mut terms = Interner::new();
        terms.intern("x");
        let q = parse_twig("//zzz", &terms).unwrap();
        close(estimate(&s, &q), 0.0);
    }

    #[test]
    fn type_mismatched_predicate_estimates_zero() {
        let t = parse("<r><y>1999</y></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//y[contains(19)]", t.terms()).unwrap();
        close(estimate(&s, &q), 0.0);
    }

    #[test]
    fn unsummarized_value_node_gives_uninformed_estimate() {
        use xcluster_xml::{ValuePathSpec, ValueType};
        let t = parse("<r><a><y>1</y></a><b><z>2</z></b></r>").unwrap();
        let cfg = ReferenceConfig {
            value_paths: Some(vec![ValuePathSpec::new(&["a", "y"], ValueType::Numeric)]),
            ..ReferenceConfig::default()
        };
        let s = reference_synopsis(&t, &cfg);
        // z is numeric but unsummarized: predicate passes with σ = 1.
        let q = parse_twig("//z[=99999]", t.terms()).unwrap();
        close(estimate(&s, &q), 1.0);
    }

    #[test]
    fn filter_qualification_capped_at_one() {
        // Each a has 3 qualifying x-children; the filter contributes a
        // probability, not a multiplier.
        let t =
            parse("<r><a><x>1</x><x>1</x><x>1</x></a><a><x>1</x><x>1</x><x>1</x></a></r>").unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let q = parse_twig("//a[x]", t.terms()).unwrap();
        close(estimate(&s, &q), 2.0);
    }

    #[test]
    fn recursive_synopsis_descendant_estimation_terminates() {
        let t = parse(
            "<r><p><l><t>one two three four five</t></l><l><p><l><t>a b c d e</t></l></p></l></p></r>",
        )
        .unwrap();
        let s = reference_synopsis(&t, &ReferenceConfig::default());
        let idx = EvalIndex::build(&t);
        let q = parse_twig("//t", t.terms()).unwrap();
        close(estimate(&s, &q), evaluate(&q, &t, &idx));
        let q = parse_twig("//p//t", t.terms()).unwrap();
        close(estimate(&s, &q), evaluate(&q, &t, &idx));
    }

    #[test]
    fn reference_estimates_match_truth_on_generated_data() {
        let d = xcluster_datagen::imdb::generate(&xcluster_datagen::imdb::ImdbConfig {
            num_movies: 80,
            seed: 13,
        });
        let s = reference_synopsis(&d.tree, &ReferenceConfig::default());
        let idx = EvalIndex::build(&d.tree);
        for qs in [
            "//movie",
            "//movie/title",
            "//actor/name",
            "//movie{/cast/actor}{/director}",
            "/imdb/movie/year",
        ] {
            let q = parse_twig(qs, d.tree.terms()).unwrap();
            let est = estimate(&s, &q);
            let truth = evaluate(&q, &d.tree, &idx);
            close(est, truth);
        }
    }
}
