use xcluster_core::build::{build_synopsis, BuildConfig};
use xcluster_core::reference::{reference_synopsis, ReferenceConfig};
use xcluster_core::{estimate, metrics};
use xcluster_datagen::imdb;
use xcluster_query::{workload, EvalIndex, QueryClass, WorkloadConfig};

fn main() {
    let d = imdb::generate(&imdb::ImdbConfig {
        num_movies: 1150,
        seed: 0xC0FFEE,
    });
    let reference = reference_synopsis(
        &d.tree,
        &ReferenceConfig {
            value_paths: Some(d.value_paths.clone()),
            ..ReferenceConfig::default()
        },
    );
    let idx = EvalIndex::build(&d.tree);
    let w = workload::generate_positive(
        &d.tree,
        &idx,
        &WorkloadConfig {
            num_queries: 150,
            class_weights: [0.0, 0.0, 0.0, 1.0],
            allowed_targets: Some(d.summarized_targets()),
            ..WorkloadConfig::default()
        },
    );
    let s = build_synopsis(
        reference.clone(),
        &BuildConfig {
            b_str: 0,
            b_val: 15 * 1024,
            ..BuildConfig::default()
        },
    );
    let r = metrics::evaluate_workload(&s, &w, &metrics::EvalOptions::default()).report;
    println!("tag-only+15KB: text={:?}", r.class_rel[3]);
    let mut worst: Vec<(f64, String, f64, f64)> = w
        .queries
        .iter()
        .map(|q| {
            let e = estimate(&s, &q.query);
            (
                metrics::relative_error(q.true_count, e, w.sanity_bound),
                q.query.to_string(),
                q.true_count,
                e,
            )
        })
        .collect();
    worst.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (rel, q, t, e) in worst.iter().take(8) {
        println!("  rel={rel:7.2} true={t:7.0} est={e:9.2}  {q}");
    }
    // how many text queries have 1 vs 2 terms, and their error split
    let (mut n1, mut e1s, mut n2, mut e2s) = (0, 0.0, 0, 0.0);
    for q in &w.queries {
        if q.class != QueryClass::Text {
            continue;
        }
        let e = estimate(&s, &q.query);
        let rel = metrics::relative_error(q.true_count, e, w.sanity_bound);
        let nterms = q
            .query
            .predicates()
            .map(|(_, p)| match p {
                xcluster_summaries::ValuePredicate::FtContains { terms } => terms.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        if nterms >= 2 {
            n2 += 1;
            e2s += rel;
        } else {
            n1 += 1;
            e1s += rel;
        }
    }
    println!(
        "1-term: n={n1} avg={:.2}; 2-term: n={n2} avg={:.2}",
        e1s / (n1 as f64).max(1.0),
        e2s / (n2 as f64).max(1.0)
    );
}
